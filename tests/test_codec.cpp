/**
 * @file
 * Wire-format codec tests: encode/decode round trips across instruction
 * shapes, the two-slot lddw form, and slot/index jump-offset conversion.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/codec.hpp"
#include "ebpf/disasm.hpp"

namespace ehdl::ebpf {
namespace {

/** Structural equality ignoring origPc. */
void
expectSameInsns(const std::vector<Insn> &a, const std::vector<Insn> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].opcode, b[i].opcode) << "insn " << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << "insn " << i;
        EXPECT_EQ(a[i].src, b[i].src) << "insn " << i;
        EXPECT_EQ(a[i].off, b[i].off) << "insn " << i;
        EXPECT_EQ(a[i].imm, b[i].imm) << "insn " << i;
        EXPECT_EQ(a[i].isMapLoad, b[i].isMapLoad) << "insn " << i;
    }
}

TEST(Codec, SimpleRoundTrip)
{
    ProgramBuilder b("rt");
    b.mov(0, 42);
    b.alu(AluOp::Add, 0, -1);
    b.exit();
    Program prog = b.build();
    const std::vector<uint8_t> wire = encode(prog.insns);
    EXPECT_EQ(wire.size(), 3 * 8u);
    expectSameInsns(decode(wire), prog.insns);
}

TEST(Codec, LddwTakesTwoSlots)
{
    ProgramBuilder b("lddw");
    b.lddw(1, 0x1122334455667788LL);
    b.mov(0, 0);
    b.exit();
    Program prog = b.build();
    const std::vector<uint8_t> wire = encode(prog.insns);
    EXPECT_EQ(wire.size(), 4 * 8u);  // lddw occupies two slots
    const std::vector<Insn> back = decode(wire);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].imm, 0x1122334455667788LL);
}

TEST(Codec, NegativeLddw)
{
    ProgramBuilder b("neg");
    b.lddw(1, -5);
    b.mov(0, 0);
    b.exit();
    const std::vector<Insn> back = decode(encode(b.build().insns));
    EXPECT_EQ(back[0].imm, -5);
}

TEST(Codec, MapLddwKeepsId)
{
    ProgramBuilder b("map");
    b.addMap({"m", MapKind::Array, 4, 8, 1});
    b.ldMap(1, 0);
    b.mov(0, 0);
    b.exit();
    const std::vector<Insn> back = decode(encode(b.build().insns));
    EXPECT_TRUE(back[0].isMapLoad);
    EXPECT_EQ(back[0].imm, 0);
}

TEST(Codec, JumpOffsetsCrossLddw)
{
    // A forward jump over an lddw: index offset 2, slot offset 3.
    ProgramBuilder b("jmp");
    b.mov(1, 0);
    b.jcond(JmpOp::Jeq, 1, 0, "target");
    b.lddw(2, 123456789012345LL);
    b.mov(3, 1);
    b.label("target");
    b.mov(0, 0);
    b.exit();
    Program prog = b.build();
    EXPECT_EQ(prog.insns[1].off, 2);

    const std::vector<uint8_t> wire = encode(prog.insns);
    // Slot offset must account for the extra lddw slot.
    const int16_t slot_off =
        static_cast<int16_t>(wire[2 * 8 + 2] | (wire[2 * 8 + 3] << 8));
    // Wire slot 1 holds the jump (slot 0 = mov).
    const int16_t jmp_off =
        static_cast<int16_t>(wire[1 * 8 + 2] | (wire[1 * 8 + 3] << 8));
    (void)slot_off;
    EXPECT_EQ(jmp_off, 3);

    expectSameInsns(decode(wire), prog.insns);
}

TEST(Codec, BackwardJumpRoundTrip)
{
    ProgramBuilder b("loop");
    b.mov(1, 3);
    b.label("top");
    b.alu(AluOp::Add, 1, -1);
    b.jcond(JmpOp::Jne, 1, 0, "top");
    b.mov(0, 0);
    b.exit();
    Program prog = b.build();
    EXPECT_EQ(prog.insns[2].off, -2);
    expectSameInsns(decode(encode(prog.insns)), prog.insns);
}

TEST(Codec, RejectsMisalignedInput)
{
    EXPECT_THROW(decode(std::vector<uint8_t>(7, 0)), FatalError);
}

TEST(Codec, RejectsTruncatedLddw)
{
    // Single-slot lddw opcode with no continuation slot.
    std::vector<uint8_t> wire(8, 0);
    wire[0] = 0x18;
    EXPECT_THROW(decode(wire), FatalError);
}

TEST(Codec, RejectsJumpIntoLddwSecondSlot)
{
    // Jump targeting the middle of an lddw must be rejected.
    std::vector<uint8_t> wire;
    auto slot = [&wire](uint8_t op, uint8_t regs, int16_t off, int32_t imm) {
        wire.push_back(op);
        wire.push_back(regs);
        wire.push_back(static_cast<uint8_t>(off & 0xff));
        wire.push_back(static_cast<uint8_t>(off >> 8));
        for (int i = 0; i < 4; ++i)
            wire.push_back(static_cast<uint8_t>(imm >> (8 * i)));
    };
    slot(0x05, 0, 1, 0);   // ja +1 -> second slot of the lddw
    slot(0x18, 1, 0, 5);   // lddw r1, ...
    slot(0x00, 0, 0, 0);   // continuation
    slot(0x95, 0, 0, 0);   // exit
    EXPECT_THROW(decode(wire), FatalError);
}

/** Random ALU/JMP programs survive an encode/decode round trip. */
class CodecFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CodecFuzzTest, RoundTrip)
{
    Rng rng(GetParam());
    ProgramBuilder b("fuzz");
    const int n = 5 + static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) {
        switch (rng.below(5)) {
          case 0: b.mov(rng.below(10), static_cast<int32_t>(rng.next()));
            break;
          case 1: b.aluReg(AluOp::Add, rng.below(10), rng.below(10)); break;
          case 2: b.alu32(AluOp::Xor, rng.below(10),
                          static_cast<int32_t>(rng.next()));
            break;
          case 3: b.lddw(rng.below(10),
                         static_cast<int64_t>(rng.next()));
            break;
          case 4: b.stx(MemSize::W, 10, -8 - 8 * rng.below(4),
                        rng.below(10));
            break;
        }
    }
    b.mov(0, 0);
    b.exit();
    Program prog = b.build();
    expectSameInsns(decode(encode(prog.insns)), prog.insns);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Range<uint64_t>(0, 32));

TEST(Disasm, ListingTwoStyle)
{
    ProgramBuilder b("dis");
    b.addMap({"stats", MapKind::Array, 4, 8, 16});
    b.ldx(MemSize::W, 2, 1, 4);
    b.stx(MemSize::W, 10, -4, 3);
    b.atomicAdd(MemSize::DW, 1, 0, 2);
    b.ldMap(1, 0);
    b.call(1);
    b.jcond(JmpOp::Jeq, 1, 0, "out");
    b.label("out");
    b.mov(0, 3);
    b.exit();
    const std::string text = disasm(b.build());
    EXPECT_NE(text.find("r2 = *(u32 *)(r1 + 4)"), std::string::npos);
    EXPECT_NE(text.find("*(u32 *)(r10 - 4) = r3"), std::string::npos);
    EXPECT_NE(text.find("lock *(u64 *)(r1 + 0) += r2"), std::string::npos);
    EXPECT_NE(text.find("r1 = map[0] ll"), std::string::npos);
    EXPECT_NE(text.find("call 1"), std::string::npos);
    EXPECT_NE(text.find("if r1 == 0 goto +0"), std::string::npos);
    EXPECT_NE(text.find("exit"), std::string::npos);
}

}  // namespace
}  // namespace ehdl::ebpf
