/**
 * @file
 * Unit tests for src/common: bit helpers, deterministic RNG, the Zipf
 * sampler and the table printer.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/bitops.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"

namespace ehdl {
namespace {

TEST(BitOps, SignExtendWidths)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffffffffULL, 32), -1);
    EXPECT_EQ(signExtend(0x1, 1), -1);
    EXPECT_EQ(signExtend(0x0, 1), 0);
    EXPECT_EQ(signExtend(0x123, 64), 0x123);
}

TEST(BitOps, LowBits)
{
    EXPECT_EQ(lowBits(0xdeadbeefcafef00dULL, 32), 0xcafef00dULL);
    EXPECT_EQ(lowBits(0xffULL, 4), 0xfULL);
    EXPECT_EQ(lowBits(0x1234ULL, 64), 0x1234ULL);
    EXPECT_EQ(lowBits(~0ULL, 0), 0ULL);
}

TEST(BitOps, ByteSwaps)
{
    EXPECT_EQ(bswap16(0x1234), 0x3412);
    EXPECT_EQ(bswap32(0x12345678u), 0x78563412u);
    EXPECT_EQ(bswap64(0x0102030405060708ULL), 0x0807060504030201ULL);
}

TEST(BitOps, LoadStoreEndianness)
{
    uint8_t buf[8] = {};
    storeBe<uint32_t>(buf, 0x0a000001);
    EXPECT_EQ(buf[0], 0x0a);
    EXPECT_EQ(buf[3], 0x01);
    EXPECT_EQ(loadBe<uint32_t>(buf), 0x0a000001u);
    storeLe<uint32_t>(buf, 0x0a000001);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(loadLe<uint32_t>(buf), 0x0a000001u);
}

TEST(BitOps, CeilDivRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(roundUp(10, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfSampler zipf(100, 1.0);
    double total = 0;
    for (uint64_t i = 0; i < 100; ++i)
        total += zipf.probability(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostPopular)
{
    ZipfSampler zipf(1000, 1.0);
    EXPECT_GT(zipf.probability(0), zipf.probability(1));
    EXPECT_GT(zipf.probability(1), zipf.probability(50));
    EXPECT_GT(zipf.probability(50), zipf.probability(999));
}

TEST(Zipf, EmpiricalSkewMatches)
{
    ZipfSampler zipf(50, 1.0);
    Rng rng(3);
    std::map<uint64_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts[zipf.sample(rng)]++;
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.probability(0),
                0.01);
    EXPECT_GT(counts[0], counts[10]);
}

TEST(Zipf, RejectsEmpty)
{
    EXPECT_THROW(ZipfSampler(0), FatalError);
}

TEST(Logging, FatalAndPanicThrow)
{
    EXPECT_THROW(fatal("bad input ", 42), FatalError);
    EXPECT_THROW(panic("bug ", 1, " two"), PanicError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
    EXPECT_EQ(fmtPct(0.0651, 1), "6.5%");
}

}  // namespace
}  // namespace ehdl
