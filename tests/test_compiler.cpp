/**
 * @file
 * eHDL compiler tests: pipeline structure for the evaluation programs
 * (stage counts, figure 9c's reduction), hardware-primitive mapping,
 * predication wiring, packet framing pads (section 4.2), state pruning
 * (section 4.3), and the hazard plan (section 4.1 / appendix A.2).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/verifier.hpp"
#include "hdl/compiler.hpp"

namespace ehdl::hdl {
namespace {

using apps::AppSpec;
using ebpf::assemble;

TEST(Compiler, ToyCounterStructure)
{
    const AppSpec toy = apps::makeToyCounter();
    const Pipeline pipe = compile(toy.prog);
    // Figure 9c: the pipeline is shorter than the instruction count.
    EXPECT_LT(pipe.numStages(), toy.prog.size());
    EXPECT_GT(pipe.numStages(), 10u);
    // Listing 1 uses one array map through lookup + atomic.
    ASSERT_EQ(pipe.mapPorts.size(), 2u);
    EXPECT_TRUE(pipe.mapPorts[0].readsIndex);
    EXPECT_TRUE(pipe.mapPorts[1].isAtomic);
    // Global-state counters need no flush machinery (section 4.1.2).
    EXPECT_TRUE(pipe.flushBlocks.empty());
    EXPECT_TRUE(pipe.warBuffers.empty());
}

TEST(Compiler, EveryInsnMappedExactlyOnce)
{
    for (const AppSpec &spec : apps::paperApps()) {
        const Pipeline pipe = compile(spec.prog);
        std::vector<int> seen(pipe.prog.size(), 0);
        for (const Stage &stage : pipe.stages)
            for (const StageOp &op : stage.ops)
                for (size_t pc : op.pcs)
                    seen[pc]++;
        const ebpf::VerifyResult vr = ebpf::verify(pipe.prog);
        ASSERT_TRUE(vr.ok);
        for (size_t pc = 0; pc < pipe.prog.size(); ++pc) {
            if (vr.analysis.reachable[pc])
                EXPECT_EQ(seen[pc], 1) << spec.prog.name << " insn " << pc;
            else
                EXPECT_EQ(seen[pc], 0) << spec.prog.name << " insn " << pc;
        }
    }
}

TEST(Compiler, StagesShorterThanInstructions)
{
    for (const AppSpec &spec : apps::paperApps()) {
        const Pipeline pipe = compile(spec.prog);
        EXPECT_LT(pipe.numStages(), spec.prog.size()) << spec.prog.name;
    }
}

TEST(Compiler, BlockStagesAreContiguousAndOrdered)
{
    for (const AppSpec &spec : apps::paperApps()) {
        const Pipeline pipe = compile(spec.prog);
        // Ops of one block occupy contiguous stages; a branch's successor
        // blocks start strictly after the branch's own block finishes.
        std::map<size_t, std::pair<size_t, size_t>> range;
        for (size_t s = 0; s < pipe.numStages(); ++s) {
            const Stage &stage = pipe.stages[s];
            if (stage.blockId == SIZE_MAX)
                continue;
            auto it = range.find(stage.blockId);
            if (it == range.end())
                range[stage.blockId] = {s, s};
            else
                it->second.second = s;
        }
        for (const auto &[block, span] : range) {
            for (size_t succ : pipe.cfg.blocks()[block].succs) {
                auto it = range.find(succ);
                if (it == range.end())
                    continue;
                EXPECT_GT(it->second.first, span.second)
                    << spec.prog.name << ": B" << block << "->B" << succ;
            }
        }
    }
}

TEST(Compiler, StatePruningShrinksStages)
{
    const AppSpec toy = apps::makeToyCounter();
    PipelineOptions pruned;
    PipelineOptions unpruned;
    unpruned.enablePruning = false;
    const Pipeline with = compile(toy.prog, pruned);
    const Pipeline without = compile(toy.prog, unpruned);

    size_t live_with = 0, live_without = 0;
    size_t stack_with = 0, stack_without = 0;
    for (const Stage &stage : with.stages) {
        live_with += stage.numLiveRegs();
        stack_with += stage.liveStack.count();
    }
    for (const Stage &stage : without.stages) {
        live_without += stage.numLiveRegs();
        stack_without += stage.liveStack.count();
    }
    // Paper section 4.4: without pruning every stage carries 11 registers
    // and the full 512B stack.
    EXPECT_EQ(live_without, 11 * without.numStages());
    EXPECT_EQ(stack_without, 512 * without.numStages());
    EXPECT_LT(live_with, live_without / 2);
    EXPECT_LT(stack_with, stack_without / 20);
}

TEST(Compiler, ToyPruningMatchesPaperShape)
{
    // Paper 4.4: most stages hold 1-3 registers, stack lives in only a
    // few stages around the lookup.
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    unsigned stages_with_stack = 0;
    for (const Stage &stage : pipe.stages) {
        EXPECT_LE(stage.numLiveRegs(), 5u);
        stages_with_stack += stage.liveStack.any() ? 1 : 0;
    }
    EXPECT_LE(stages_with_stack, pipe.numStages() / 2);
    // The stack that survives is just the 4B lookup key.
    for (const Stage &stage : pipe.stages)
        EXPECT_LE(stage.liveStack.count(), 8u);
}

TEST(Compiler, FramingPadsForDeepAccess)
{
    // A program reading byte 500 at the very first stage needs NOP pads
    // so frame 500/64 = 7 is inside the pipeline (section 4.2).
    ebpf::Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r0 = *(u8 *)(r6 + 500)
        exit
    )");
    PipelineOptions opts;
    opts.frameBytes = 64;
    const Pipeline pipe = compile(prog, opts);
    EXPECT_GE(pipe.padStages, 5u);
    unsigned pads = 0;
    for (const Stage &stage : pipe.stages)
        pads += stage.isPad ? 1 : 0;
    EXPECT_GE(pads, pipe.padStages);
    // With 32B frames the same access sits at frame 15: more pads.
    PipelineOptions small;
    small.frameBytes = 32;
    EXPECT_GT(compile(prog, small).padStages, pipe.padStages);
}

TEST(Compiler, NoPadsForHeaderOnlyPrograms)
{
    const Pipeline pipe = compile(apps::makeSimpleFirewall().prog);
    EXPECT_EQ(pipe.padStages, 0u);
}

TEST(Compiler, FlushBlocksForFlowState)
{
    const Pipeline pipe = compile(apps::makeSimpleFirewall().prog);
    // lookup/lookup/update on the session table -> one flush block for
    // the update, protecting the earlier index reads, restart at 0.
    ASSERT_EQ(pipe.flushBlocks.size(), 1u);
    EXPECT_EQ(pipe.flushBlocks[0].restartStage, 0u);
    EXPECT_LT(pipe.flushBlocks[0].firstReadStage,
              pipe.flushBlocks[0].writeStage);
}

TEST(Compiler, LeakyBucketHazardGeometry)
{
    const Pipeline pipe = compile(apps::makeLeakyBucket().prog);
    // Value loads before stores -> flush blocks; the earlier store parks
    // until the later store stage (speculation buffer).
    EXPECT_GE(pipe.flushBlocks.size(), 2u);
    EXPECT_GE(pipe.warBuffers.size(), 1u);
    for (const FlushBlockPlan &fb : pipe.flushBlocks)
        EXPECT_EQ(fb.restartStage, 0u);
}

TEST(Compiler, ElasticBufferAfterAtomic)
{
    const Pipeline pipe = compile(apps::makeElasticDemo().prog);
    ASSERT_EQ(pipe.elasticBuffers.size(), 1u);
    for (const FlushBlockPlan &fb : pipe.flushBlocks) {
        EXPECT_EQ(fb.restartStage, pipe.elasticBuffers[0]);
        EXPECT_LT(fb.restartStage, fb.firstReadStage);
    }
}

TEST(Compiler, WarBufferForWriteThenRead)
{
    // Classic figure-6 WAR: store a field, read another field later.
    ebpf::Program prog = assemble(R"(
        .map m hash 4 16 16
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r3 = 1
        *(u64 *)(r0 + 0) = r3
        r4 = *(u64 *)(r0 + 0)
        r0 = r4
        out:
        r0 = 2
        exit
    )");
    const Pipeline pipe = compile(prog);
    ASSERT_GE(pipe.warBuffers.size(), 1u);
    const WarBufferPlan &buf = pipe.warBuffers[0];
    EXPECT_GT(buf.depth, 0u);
    EXPECT_EQ(buf.lastReadStage, buf.writeStage + buf.depth);
}

TEST(Compiler, RejectsAtomicBetweenReadAndWrite)
{
    // atomic on the SAME map between its read and its write: the flush
    // could not avoid replaying the atomic.
    ebpf::Program prog = assemble(R"(
        .map m hash 4 16 16
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r4 = *(u64 *)(r0 + 0)
        r2 = 1
        lock *(u64 *)(r0 + 8) += r2
        r4 += 1
        *(u64 *)(r0 + 0) = r4
        out:
        r0 = 2
        exit
    )");
    EXPECT_THROW(compile(prog), FatalError);
}

TEST(Compiler, RejectsIndexWriteBeforeRead)
{
    // update, then a later lookup of the same map: would need speculative
    // index versioning.
    ebpf::Program prog = assemble(R"(
        .map m hash 4 8 16
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r4 = 1
        *(u64 *)(r10 - 16) = r4
        r1 = map[m]
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r3 = *(u32 *)(r6 + 30)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        r0 = 2
        exit
    )");
    EXPECT_THROW(compile(prog), FatalError);
}

TEST(Compiler, RejectsUnverifiableProgram)
{
    ebpf::ProgramBuilder b("bad");
    b.movReg(0, 5);  // r5 uninitialized
    b.exit();
    EXPECT_THROW(compile(b.build()), FatalError);
}

TEST(Compiler, UnrollsLoopsAutomatically)
{
    ebpf::Program prog = assemble(R"(
        r1 = 3
        r2 = 0
        top:
        r2 += 1
        r1 -= 1
        if r1 != 0 goto top
        r0 = 2
        exit
    )");
    const Pipeline pipe = compile(prog);
    EXPECT_TRUE(pipe.cfg.isDag());
    EXPECT_GT(pipe.prog.size(), prog.size());  // unrolled copies
}

TEST(Compiler, HelperBlocksAddInlineStages)
{
    // bpf_map_update_elem occupies 2 stages (helpers.cpp): the row after
    // an update is a pad stage.
    const Pipeline pipe = compile(apps::makeSimpleFirewall().prog);
    bool found_update_pad = false;
    for (size_t s = 0; s + 1 < pipe.numStages(); ++s) {
        for (const StageOp &op : pipe.stages[s].ops) {
            if (op.kind == OpKind::MapUpdate)
                found_update_pad = pipe.stages[s + 1].isPad;
        }
    }
    EXPECT_TRUE(found_update_pad);
}

TEST(Compiler, BranchOpsCarrySuccessorBlocks)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    unsigned branches = 0;
    for (const Stage &stage : pipe.stages) {
        for (const StageOp &op : stage.ops) {
            if (op.kind == OpKind::Branch) {
                ++branches;
                EXPECT_NE(op.takenBlock, SIZE_MAX);
                EXPECT_NE(op.fallBlock, SIZE_MAX);
                EXPECT_LT(op.takenBlock, pipe.numBlocks());
            }
            if (op.kind == OpKind::Jump) {
                EXPECT_NE(op.takenBlock, SIZE_MAX);
            }
        }
    }
    EXPECT_GE(branches, 4u);  // toy has >= 4 conditional branches
}

TEST(Compiler, DescribeListsStages)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const std::string text = pipe.describe();
    EXPECT_NE(text.find("stage 0"), std::string::npos);
    EXPECT_NE(text.find("maplookup"), std::string::npos);
    EXPECT_NE(text.find("mapatomic"), std::string::npos);
}

TEST(Compiler, CompileIsDeterministic)
{
    // Two independent compilations of the same program must produce the
    // same stage layout — the scheduler and hazard planner contain no
    // iteration-order or address-dependent choices.
    for (const AppSpec &spec : apps::paperApps()) {
        const Pipeline first = compile(spec.prog);
        const Pipeline second = compile(spec.prog);
        EXPECT_EQ(first.describe(), second.describe()) << spec.prog.name;
    }
}

TEST(Compiler, GoldenStageLayouts)
{
    // Full describe() snapshots for the five evaluation programs, pinned
    // under tests/golden/. Any intentional change to scheduling, framing,
    // pruning or hazard planning shows up as a readable diff; regenerate
    // with EHDL_UPDATE_GOLDEN=1.
    const bool update = std::getenv("EHDL_UPDATE_GOLDEN") != nullptr;
    for (const AppSpec &spec : apps::paperApps()) {
        const std::string path = std::string(EHDL_GOLDEN_DIR) + "/" +
                                 spec.prog.name + ".txt";
        const std::string text = compile(spec.prog).describe();
        if (update) {
            std::ofstream out(path);
            ASSERT_TRUE(out.good()) << "cannot write " << path;
            out << text;
            continue;
        }
        std::ifstream in(path);
        ASSERT_TRUE(in.good())
            << "missing golden file " << path
            << " (regenerate with EHDL_UPDATE_GOLDEN=1)";
        std::ostringstream want;
        want << in.rdbuf();
        EXPECT_EQ(text, want.str())
            << spec.prog.name << ": stage layout diverged from " << path
            << " (EHDL_UPDATE_GOLDEN=1 regenerates after intentional "
               "changes)";
    }
}

TEST(Compiler, MaxFlushDepthReflectsPlan)
{
    const Pipeline leaky = compile(apps::makeLeakyBucket().prog);
    EXPECT_GT(leaky.maxFlushDepth(), 0u);
    const Pipeline router = compile(apps::makeRouterIpv4().prog);
    EXPECT_EQ(router.maxFlushDepth(), 0u);
}

}  // namespace
}  // namespace ehdl::hdl
