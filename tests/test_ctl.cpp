/**
 * @file
 * Control-plane subsystem tests: mailbox channel timing, schedule
 * parsing, quiescence semantics (a packet in flight across a host update
 * epoch must observe the entire old or entire new entry, never a torn
 * one), generation counters, quiesced program hot-swap under load,
 * replica fan-out in both map modes, threaded MultiPipeSim execution,
 * and the VM-replay differential contract across every example app.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/apps.hpp"
#include "common/bitops.hpp"
#include "common/logging.hpp"
#include "ctl/controller.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/helpers.hpp"
#include "hdl/compiler.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl::ctl {
namespace {

using ebpf::AluOp;
using ebpf::JmpOp;
using ebpf::MapKind;
using ebpf::MapSet;
using ebpf::MemSize;
using ebpf::ProgramBuilder;
using ebpf::XdpAction;

constexpr unsigned R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5,
                   FP = 10;

net::Packet
defaultPacket(uint64_t id, uint64_t arrival_ns = 0)
{
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    pkt.id = id;
    pkt.arrivalNs = arrival_ns;
    return pkt;
}

std::vector<uint8_t>
key32(uint32_t v)
{
    std::vector<uint8_t> k(4);
    storeLe<uint32_t>(k.data(), v);
    return k;
}

std::vector<uint8_t>
val64(uint64_t v)
{
    std::vector<uint8_t> out(8);
    storeLe<uint64_t>(out.data(), v);
    return out;
}

CtlTxn
updateTxn(uint64_t cycle, const std::string &map, std::vector<uint8_t> key,
          std::vector<uint8_t> value)
{
    CtlTxn txn;
    txn.cycle = cycle;
    txn.kind = CtlOpKind::MapUpdate;
    CtlMapOp op;
    op.kind = CtlOpKind::MapUpdate;
    op.map = map;
    op.key = std::move(key);
    op.value = std::move(value);
    txn.ops.push_back(std::move(op));
    return txn;
}

/**
 * The torn-update probe: reads the two 4-byte halves of an 8-byte map
 * value and returns DROP when they differ, PASS when they match (or the
 * entry is absent). The host only ever installs values whose halves
 * match, so any DROP means a packet observed a torn host write.
 */
ebpf::Program
makeTornProbe()
{
    ProgramBuilder b("torn_probe");
    const uint32_t cfg = b.addMap({"cfg", MapKind::Array, 4, 8, 1});
    b.mov(R3, 0);
    b.stx(MemSize::W, FP, -4, R3);
    b.ldMap(R1, cfg);
    b.movReg(R2, FP);
    b.alu(AluOp::Add, R2, -4);
    b.call(ebpf::kHelperMapLookup);
    b.jcond(JmpOp::Jeq, R0, 0, "pass");
    b.ldx(MemSize::W, R4, R0, 0);
    b.ldx(MemSize::W, R5, R0, 4);
    b.jcondReg(JmpOp::Jne, R4, R5, "drop");
    b.label("pass");
    b.mov(R0, 2);
    b.exit();
    b.label("drop");
    b.mov(R0, 1);
    b.exit();
    return b.build();
}

/** 8-byte value with both halves set to @p half. */
std::vector<uint8_t>
halves(uint32_t half)
{
    std::vector<uint8_t> v(8);
    storeLe<uint32_t>(v.data(), half);
    storeLe<uint32_t>(v.data() + 4, half);
    return v;
}

/** A trivial pipeline returning a fixed action (for swap tests). */
ebpf::Program
makeConstProgram(const std::string &name, int64_t action)
{
    ProgramBuilder b(name);
    b.mov(R0, action);
    b.exit();
    return b.build();
}

// --- Channel timing ---------------------------------------------------

TEST(CtlChannel, LatencySplitAndSerialization)
{
    CtlChannelConfig config;
    config.roundTripCycles = 100;
    config.maxInFlight = 8;
    CtlChannel ch(config);
    EXPECT_EQ(ch.upLatency(), 50u);
    EXPECT_EQ(ch.downLatency(), 50u);
    EXPECT_EQ(ch.upLatency() + ch.downLatency(), 100u);

    // Submissions serialize: a later transaction wanting an earlier
    // cycle leaves no sooner than its predecessor.
    EXPECT_EQ(ch.submit(40), 40u);
    EXPECT_EQ(ch.submit(10), 40u);
    EXPECT_EQ(ch.submit(60), 60u);
    // Completion is visible downLatency after the device-side apply.
    EXPECT_EQ(ch.complete(200), 250u);
}

TEST(CtlChannel, OddRoundTripSplitsLossless)
{
    CtlChannelConfig config;
    config.roundTripCycles = 7;
    CtlChannel ch(config);
    EXPECT_EQ(ch.upLatency() + ch.downLatency(), 7u);
}

TEST(CtlChannel, BackpressureBoundsInFlight)
{
    CtlChannelConfig config;
    config.roundTripCycles = 100;
    config.maxInFlight = 1;
    CtlChannel ch(config);
    EXPECT_EQ(ch.submit(0), 0u);
    // Device applies at cycle 50; host sees completion at 100.
    EXPECT_EQ(ch.complete(50), 100u);
    // The ring has one slot, so the next submission waits for that
    // completion even though the host wanted cycle 0.
    EXPECT_EQ(ch.submit(0), 100u);
}

TEST(CtlChannel, RejectsDegenerateConfigs)
{
    CtlChannelConfig rtt;
    rtt.roundTripCycles = 1;
    EXPECT_THROW(CtlChannel{rtt}, FatalError);
    CtlChannelConfig ring;
    ring.maxInFlight = 0;
    EXPECT_THROW(CtlChannel{ring}, FatalError);
}

// --- Schedule format --------------------------------------------------

TEST(CtlSchedule, ParseSerializeRoundTrip)
{
    const std::string text =
        "# comment\n"
        "@120 update counters 01000000 0a00000000000000 any\n"
        "@140 delete flows deadbeef\n"
        "@200 lookup counters 01000000\n"
        "@300 stats\n"
        "@400 drain\n"
        "@500 swap alt\n"
        "@600 batch update m 01000000 aa000000 noexist ; delete m "
        "02000000\n";
    const CtlSchedule sched = parseSchedule(text);
    ASSERT_EQ(sched.txns.size(), 7u);
    EXPECT_EQ(sched.txns[0].kind, CtlOpKind::MapUpdate);
    EXPECT_EQ(sched.txns[1].kind, CtlOpKind::MapDelete);
    EXPECT_EQ(sched.txns[2].kind, CtlOpKind::MapLookup);
    EXPECT_EQ(sched.txns[3].kind, CtlOpKind::StatsRead);
    EXPECT_EQ(sched.txns[4].kind, CtlOpKind::Drain);
    EXPECT_EQ(sched.txns[5].kind, CtlOpKind::SwapProgram);
    EXPECT_EQ(sched.txns[5].program, "alt");
    EXPECT_EQ(sched.txns[6].ops.size(), 2u);
    EXPECT_EQ(sched.txns[6].ops[0].flags,
              static_cast<uint64_t>(ebpf::kBpfNoExist));
    // serialize(parse(x)) must be a fixed point of parse.
    EXPECT_EQ(parseSchedule(serializeSchedule(sched)), sched);
}

TEST(CtlSchedule, ParseSortsByCycle)
{
    const CtlSchedule sched = parseSchedule("@500 stats\n@100 stats\n");
    ASSERT_EQ(sched.txns.size(), 2u);
    EXPECT_EQ(sched.txns[0].cycle, 100u);
    EXPECT_EQ(sched.txns[1].cycle, 500u);
}

TEST(CtlSchedule, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parseSchedule("update m 00 00\n"), FatalError);   // no @
    EXPECT_THROW(parseSchedule("@10 frobnicate m\n"), FatalError);
    EXPECT_THROW(parseSchedule("@10 update m 0g 00\n"), FatalError);
    EXPECT_THROW(parseSchedule("@10 update m 000 00\n"), FatalError);
    EXPECT_THROW(parseSchedule("@10 swap\n"), FatalError);
}

// --- Quiescence semantics --------------------------------------------

TEST(CtlController, PacketsNeverObserveTornUpdates)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);
    ASSERT_EQ(maps.byName("cfg")->hostUpdate(key32(0), halves(0x11111111)),
              0);

    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, maps, sc);
    const uint64_t n = 600;
    for (uint64_t i = 1; i <= n; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i)));

    // Flip the whole value back and forth while packets are in flight.
    CtlChannelConfig cc;
    cc.roundTripCycles = 10;
    CtlSchedule sched;
    sched.txns.push_back(updateTxn(100, "cfg", key32(0),
                                   halves(0x22222222)));
    sched.txns.push_back(updateTxn(200, "cfg", key32(0),
                                   halves(0x11111111)));
    sched.txns.push_back(updateTxn(300, "cfg", key32(0),
                                   halves(0x22222222)));

    CtlController ctrl(sim, maps, cc);
    const CtlRunReport report = ctrl.run(sched);
    sim.drain();

    ASSERT_EQ(sim.stats().completed, n);
    // Every update must have landed strictly mid-stream, or the test
    // would not be exercising the hazard window at all.
    for (const CtlTxnRecord &rec : report.txns) {
        EXPECT_GT(rec.retiredBefore[0], 0u);
        EXPECT_LT(rec.retiredBefore[0], n);
    }
    // PASS means the halves matched; one DROP is one torn observation.
    for (const sim::PacketOutcome &out : sim.outcomes())
        EXPECT_EQ(out.action, XdpAction::Pass)
            << "packet " << out.id << " observed a torn update";
}

TEST(CtlController, UpdateAppliesAtPacketBoundary)
{
    // The VM replay of the apply log must reproduce the pipeline's
    // verdicts exactly: the update epoch boundary recorded in
    // retiredBefore is the packet index where behaviour changes.
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);

    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, maps, sc);
    std::vector<net::Packet> packets;
    for (uint64_t i = 1; i <= 400; ++i)
        packets.push_back(defaultPacket(i));
    for (const net::Packet &pkt : packets)
        ASSERT_TRUE(sim.offer(pkt));

    CtlChannelConfig cc;
    cc.roundTripCycles = 10;
    CtlSchedule sched;
    // Install a torn-looking value (halves differ): packets after the
    // epoch DROP, packets before it PASS (entry starts absent).
    CtlTxn bad = updateTxn(150, "cfg", key32(0), val64(0x1));
    sched.txns.push_back(bad);
    CtlController ctrl(sim, maps, cc);
    const CtlRunReport report = ctrl.run(sched);
    sim.drain();

    ASSERT_EQ(report.txns.size(), 1u);
    const uint64_t boundary = report.txns[0].retiredBefore[0];
    ASSERT_GT(boundary, 0u);
    ASSERT_LT(boundary, 400u);
    const auto outcomes = sim.outcomes();
    ASSERT_EQ(outcomes.size(), 400u);
    for (size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(outcomes[i].action,
                  i < boundary ? XdpAction::Pass : XdpAction::Drop)
            << "at index " << i << " (boundary " << boundary << ")";

    // And the VM replay agrees packet by packet.
    MapSet vm_maps(prog.maps);
    const CtlVmReplayResult replay = replayScheduleOnVm(
        prog, {}, packets, report, 0, vm_maps);
    ASSERT_EQ(replay.outcomes.size(), outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(replay.outcomes[i].action, outcomes[i].action);
    EXPECT_TRUE(MapSet::equal(maps, vm_maps));
}

TEST(CtlController, StatsReadIsSideband)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);
    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, maps, sc);
    for (uint64_t i = 1; i <= 300; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i)));

    CtlChannelConfig cc;
    cc.roundTripCycles = 10;
    CtlSchedule sched;
    CtlTxn stats;
    stats.cycle = 100;
    stats.kind = CtlOpKind::StatsRead;
    sched.txns.push_back(stats);
    CtlController ctrl(sim, maps, cc);
    const CtlRunReport report = ctrl.run(sched);
    sim.drain();

    ASSERT_EQ(report.txns.size(), 1u);
    const CtlTxnRecord &rec = report.txns[0];
    // No quiescence: the read samples at exactly the device cycle, while
    // packets are still in flight (retired < offered).
    EXPECT_EQ(rec.applyCycle[0], rec.deviceCycle);
    EXPECT_LT(rec.retiredBefore[0], 300u);
    ASSERT_EQ(rec.statsSnapshot.size(), 1u);
    EXPECT_EQ(rec.statsSnapshot[0].completed, rec.retiredBefore[0]);
    // Side-band reads cost the datapath nothing: n + stages + slack.
    EXPECT_LE(sim.stats().cycles, 300 + pipe.numStages() + 8);
}

TEST(CtlController, DrainRetiresEverythingOffered)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);
    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, maps, sc);
    for (uint64_t i = 1; i <= 200; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i)));

    CtlSchedule sched;
    CtlTxn drain;
    drain.cycle = 10;
    drain.kind = CtlOpKind::Drain;
    sched.txns.push_back(drain);
    CtlController ctrl(sim, maps);
    const CtlRunReport report = ctrl.run(sched);
    EXPECT_EQ(report.txns[0].retiredBefore[0], 200u);
    EXPECT_EQ(sim.stats().completed, 200u);
}

TEST(CtlController, GenerationBumpsOncePerMutatingTxn)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);
    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, maps, sc);

    CtlSchedule sched;
    // One update, then a batch of three primitives on the same map, then
    // a lookup: generations must advance by 1, 1 and 0.
    sched.txns.push_back(updateTxn(10, "cfg", key32(0), val64(1)));
    CtlTxn batch;
    batch.cycle = 20;
    batch.kind = CtlOpKind::MapBatch;
    for (int i = 0; i < 3; ++i) {
        CtlMapOp op;
        op.kind = CtlOpKind::MapUpdate;
        op.map = "cfg";
        op.key = key32(0);
        op.value = val64(static_cast<uint64_t>(i));
        batch.ops.push_back(std::move(op));
    }
    sched.txns.push_back(batch);
    CtlTxn lookup;
    lookup.cycle = 30;
    lookup.kind = CtlOpKind::MapLookup;
    CtlMapOp look;
    look.kind = CtlOpKind::MapLookup;
    look.map = "cfg";
    look.key = key32(0);
    lookup.ops.push_back(look);
    sched.txns.push_back(lookup);

    CtlController ctrl(sim, maps);
    const uint64_t gen0 = maps.byName("cfg")->generation();
    ctrl.run(sched);
    EXPECT_EQ(maps.byName("cfg")->generation(), gen0 + 2);
    // Failed mutations open no new epoch.
    CtlSchedule failing;
    CtlTxn bad = updateTxn(40, "cfg", key32(0), val64(9));
    bad.ops[0].flags = ebpf::kBpfNoExist;  // array entries always exist
    failing.txns.push_back(bad);
    ctrl.run(failing);
    EXPECT_EQ(maps.byName("cfg")->generation(), gen0 + 2);
    sim.drain();
}

// --- Program hot-swap -------------------------------------------------

TEST(CtlController, SwapUnderLoadLosesNoPackets)
{
    const ebpf::Program prog_a = makeConstProgram("always_tx", 3);
    const ebpf::Program prog_b = makeConstProgram("always_drop", 1);
    const hdl::Pipeline pipe_a = hdl::compile(prog_a);
    const hdl::Pipeline pipe_b = hdl::compile(prog_b);

    MapSet maps(prog_a.maps);
    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe_a, maps, sc);
    const uint64_t n = 500;
    for (uint64_t i = 1; i <= n; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i)));

    CtlChannelConfig cc;
    cc.roundTripCycles = 10;
    CtlSchedule sched;
    CtlTxn swap;
    swap.cycle = 200;
    swap.kind = CtlOpKind::SwapProgram;
    swap.program = "b";
    sched.txns.push_back(swap);

    CtlController ctrl(sim, maps, cc);
    ctrl.addProgram("b", pipe_b);
    const CtlRunReport report = ctrl.run(sched);
    sim.drain();

    // Zero loss across the swap: everything offered retires.
    EXPECT_EQ(sim.stats().completed, n);
    EXPECT_EQ(sim.stats().lost, 0u);
    const uint64_t boundary = report.txns[0].retiredBefore[0];
    ASSERT_GT(boundary, 0u);
    ASSERT_LT(boundary, n);
    const auto outcomes = sim.outcomes();
    ASSERT_EQ(outcomes.size(), n);
    for (size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(outcomes[i].action,
                  i < boundary ? XdpAction::Tx : XdpAction::Drop);

    // The replay contract covers swaps too.
    std::vector<net::Packet> packets;
    for (uint64_t i = 1; i <= n; ++i)
        packets.push_back(defaultPacket(i));
    MapSet vm_maps(prog_a.maps);
    std::map<std::string, const ebpf::Program *> programs;
    programs["b"] = &prog_b;
    const CtlVmReplayResult replay = replayScheduleOnVm(
        prog_a, programs, packets, report, 0, vm_maps);
    ASSERT_EQ(replay.outcomes.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(replay.outcomes[i].action, outcomes[i].action);
}

TEST(CtlController, SwapCarriesMapContentsOver)
{
    // Both programs read cfg; the swap must keep the host-installed
    // entry visible to the new pipeline.
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe_a = hdl::compile(prog);
    const hdl::Pipeline pipe_b = hdl::compile(prog);
    MapSet maps(prog.maps);
    ASSERT_EQ(maps.byName("cfg")->hostUpdate(key32(0), halves(0x7)), 0);

    sim::PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe_a, maps, sc);
    for (uint64_t i = 1; i <= 100; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i)));
    CtlSchedule sched;
    CtlTxn swap;
    swap.cycle = 50;
    swap.kind = CtlOpKind::SwapProgram;
    swap.program = "same";
    sched.txns.push_back(swap);
    CtlController ctrl(sim, maps);
    ctrl.addProgram("same", pipe_b);
    ctrl.run(sched);
    sim.drain();
    EXPECT_EQ(sim.stats().completed, 100u);
    for (const sim::PacketOutcome &out : sim.outcomes())
        EXPECT_EQ(out.action, XdpAction::Pass);
    const auto v = maps.byName("cfg")->hostLookup(key32(0));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, halves(0x7));
}

TEST(CtlController, SwapRejectsMapShapeMismatch)
{
    const ebpf::Program prog_a = makeTornProbe();
    const ebpf::Program prog_b = makeConstProgram("no_maps", 2);
    const hdl::Pipeline pipe_a = hdl::compile(prog_a);
    const hdl::Pipeline pipe_b = hdl::compile(prog_b);
    MapSet maps(prog_a.maps);
    sim::PipeSim sim(pipe_a, maps);
    CtlSchedule sched;
    CtlTxn swap;
    swap.cycle = 10;
    swap.kind = CtlOpKind::SwapProgram;
    swap.program = "bad";
    sched.txns.push_back(swap);
    CtlController ctrl(sim, maps);
    ctrl.addProgram("bad", pipe_b);
    EXPECT_THROW(ctrl.run(sched), FatalError);
}

TEST(CtlController, ValidatesSchedules)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(prog.maps);
    sim::PipeSim sim(pipe, maps);
    CtlController ctrl(sim, maps);

    CtlSchedule unknown_map;
    unknown_map.txns.push_back(updateTxn(10, "nope", key32(0), val64(0)));
    EXPECT_THROW(ctrl.run(unknown_map), FatalError);

    CtlSchedule unknown_label;
    CtlTxn swap;
    swap.kind = CtlOpKind::SwapProgram;
    swap.program = "nope";
    unknown_label.txns.push_back(swap);
    EXPECT_THROW(ctrl.run(unknown_label), FatalError);

    CtlSchedule unordered;
    unordered.txns.push_back(updateTxn(100, "cfg", key32(0), val64(0)));
    unordered.txns.push_back(updateTxn(50, "cfg", key32(0), val64(0)));
    EXPECT_THROW(ctrl.run(unordered), FatalError);

    CtlSchedule oversized;
    CtlTxn batch;
    batch.kind = CtlOpKind::MapBatch;
    for (unsigned i = 0; i < ctrl.channel().config().maxBatchOps + 1;
         ++i) {
        CtlMapOp op;
        op.kind = CtlOpKind::MapUpdate;
        op.map = "cfg";
        op.key = key32(0);
        op.value = val64(i);
        batch.ops.push_back(std::move(op));
    }
    oversized.txns.push_back(batch);
    EXPECT_THROW(ctrl.run(oversized), FatalError);
}

// --- Multi-queue fan-out ----------------------------------------------

/** Offer @p n generated packets, returning per-replica streams. */
std::vector<std::vector<net::Packet>>
offerTraffic(sim::MultiPipeSim &multi, uint64_t n,
             std::vector<net::Packet> *all = nullptr)
{
    sim::TrafficConfig tc;
    tc.numFlows = 32;
    tc.seed = 11;
    sim::TrafficGen gen(tc);
    std::vector<std::vector<net::Packet>> streams(multi.numReplicas());
    for (uint64_t i = 0; i < n; ++i) {
        const net::Packet pkt = gen.next();
        streams[multi.dispatch(pkt)].push_back(pkt);
        if (all != nullptr)
            all->push_back(pkt);
        EXPECT_TRUE(multi.offer(pkt));
    }
    return streams;
}

TEST(CtlMulti, ShardedMutationsFanOutToEveryReplica)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet seed(prog.maps);
    sim::MultiPipeSimConfig mc;
    mc.numReplicas = 4;
    mc.pipe.inputQueueCapacity = 1u << 20;
    sim::MultiPipeSim multi(pipe, seed, mc);
    offerTraffic(multi, 400);

    CtlChannelConfig cc;
    cc.roundTripCycles = 10;
    CtlSchedule sched;
    sched.txns.push_back(updateTxn(100, "cfg", key32(0), halves(0x42)));
    CtlTxn lookup;
    lookup.cycle = 200;
    lookup.kind = CtlOpKind::MapLookup;
    CtlMapOp look;
    look.kind = CtlOpKind::MapLookup;
    look.map = "cfg";
    look.key = key32(0);
    lookup.ops.push_back(look);
    sched.txns.push_back(lookup);

    CtlController ctrl(multi, cc);
    const CtlRunReport report = ctrl.run(sched);
    multi.drain();

    // The update reached every shard...
    for (unsigned r = 0; r < 4; ++r) {
        const auto v = multi.replicaMaps(r).byName("cfg")->hostLookup(
            key32(0));
        ASSERT_TRUE(v.has_value()) << "replica " << r;
        EXPECT_EQ(*v, halves(0x42));
    }
    // ...and the lookup returned one result per replica, all hits.
    ASSERT_EQ(report.txns[1].results.size(), 4u);
    for (unsigned r = 0; r < 4; ++r) {
        ASSERT_EQ(report.txns[1].results[r].size(), 1u);
        EXPECT_TRUE(report.txns[1].results[r][0].hit);
        EXPECT_EQ(report.txns[1].results[r][0].value, halves(0x42));
    }
}

TEST(CtlMulti, SharedModeAppliesOnce)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet shared(prog.maps);
    sim::MultiPipeSimConfig mc;
    mc.numReplicas = 2;
    mc.mapMode = sim::MapMode::Shared;
    mc.pipe.inputQueueCapacity = 1u << 20;
    sim::MultiPipeSim multi(pipe, shared, mc);
    offerTraffic(multi, 200);

    CtlSchedule sched;
    sched.txns.push_back(updateTxn(50, "cfg", key32(0), halves(0x9)));
    CtlController ctrl(multi, {});
    const CtlRunReport report = ctrl.run(sched);
    multi.drain();

    // One application against the shared set, recorded under replica 0.
    ASSERT_EQ(report.txns[0].results[0].size(), 1u);
    EXPECT_EQ(report.txns[0].results[0][0].rc, 0);
    EXPECT_TRUE(report.txns[0].results[1].empty());
    const auto v = shared.byName("cfg")->hostLookup(key32(0));
    ASSERT_TRUE(v.has_value());
    // No packet may have seen a torn write in either replica.
    for (const sim::PacketOutcome &out : multi.outcomes())
        EXPECT_EQ(out.action, XdpAction::Pass);
}

TEST(CtlMulti, ThreadedMatchesSequentialSharded)
{
    const ebpf::Program prog = makeTornProbe();
    const hdl::Pipeline pipe = hdl::compile(prog);

    CtlSchedule sched;
    sched.txns.push_back(updateTxn(80, "cfg", key32(0), halves(0x1)));
    sched.txns.push_back(updateTxn(160, "cfg", key32(0), halves(0x2)));
    CtlTxn drain;
    drain.cycle = 400;
    drain.kind = CtlOpKind::Drain;
    sched.txns.push_back(drain);

    const auto runMode = [&](bool threaded) {
        MapSet seed(prog.maps);
        sim::MultiPipeSimConfig mc;
        mc.numReplicas = 3;
        mc.threaded = threaded;
        mc.pipe.inputQueueCapacity = 1u << 20;
        auto multi =
            std::make_unique<sim::MultiPipeSim>(pipe, seed, mc);
        offerTraffic(*multi, 300);
        CtlChannelConfig cc;
        cc.roundTripCycles = 10;
        CtlController ctrl(*multi, cc);
        const CtlRunReport report = ctrl.run(sched);
        multi->drain();
        return std::make_pair(std::move(multi), report);
    };

    auto [seq, seq_report] = runMode(false);
    auto [thr, thr_report] = runMode(true);

    // Threaded execution is observationally identical to sequential:
    // same per-replica apply boundaries, results and final map state.
    ASSERT_EQ(seq_report.txns.size(), thr_report.txns.size());
    for (size_t t = 0; t < seq_report.txns.size(); ++t) {
        EXPECT_EQ(seq_report.txns[t].retiredBefore,
                  thr_report.txns[t].retiredBefore);
        EXPECT_EQ(seq_report.txns[t].results, thr_report.txns[t].results);
        EXPECT_EQ(seq_report.txns[t].completeCycle,
                  thr_report.txns[t].completeCycle);
    }
    for (unsigned r = 0; r < 3; ++r)
        EXPECT_TRUE(MapSet::equal(seq->replicaMaps(r),
                                  thr->replicaMaps(r)));
    const auto a = seq->outcomes();
    const auto b = thr->outcomes();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].action, b[i].action);
    }
    // And no replica, threaded or not, ever saw a torn update.
    for (const sim::PacketOutcome &out : b)
        EXPECT_EQ(out.action, XdpAction::Pass);
}

// --- Differential sweep across the example apps -----------------------

TEST(CtlDifferential, EveryAppAgreesWithVmReplayUnderSchedule)
{
    const std::vector<apps::AppSpec> specs = {
        apps::makeToyCounter(),    apps::makeSimpleFirewall(),
        apps::makeRouterIpv4(),    apps::makeTxIpTunnel(),
        apps::makeDnat(),          apps::makeSuricataFilter(),
        apps::makeLeakyBucket(),   apps::makeMonitorSampler(),
        apps::makeL4LoadBalancer(), apps::makeElasticDemo(),
        apps::makeIpipDecap(),
    };
    for (const apps::AppSpec &spec : specs) {
        SCOPED_TRACE(spec.prog.name);
        const hdl::Pipeline pipe = hdl::compile(spec.prog);
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);

        sim::TrafficConfig tc;
        tc.numFlows = 16;
        tc.ipProto = spec.ipProto;
        tc.reverseFraction = spec.reverseFraction;
        tc.seed = 5;
        sim::TrafficGen gen(tc);
        std::vector<net::Packet> packets;
        for (int i = 0; i < 300; ++i)
            packets.push_back(gen.next());

        sim::PipeSimConfig sc;
        sc.inputQueueCapacity = 1u << 20;
        sim::PipeSim sim(pipe, maps, sc);
        for (const net::Packet &pkt : packets)
            ASSERT_TRUE(sim.offer(pkt));

        // Mutate the first byte-shaped entry of every declared map plus
        // a delete and a lookup, mid-stream.
        CtlChannelConfig cc;
        cc.roundTripCycles = 20;
        CtlSchedule sched;
        uint64_t cycle = 60;
        for (const ebpf::MapDef &def : spec.prog.maps) {
            sched.txns.push_back(
                updateTxn(cycle, def.name,
                          std::vector<uint8_t>(def.keySize, 0),
                          std::vector<uint8_t>(def.valueSize, 0x5a)));
            cycle += 40;
            CtlTxn del;
            del.cycle = cycle;
            del.kind = CtlOpKind::MapDelete;
            CtlMapOp op;
            op.kind = CtlOpKind::MapDelete;
            op.map = def.name;
            op.key = std::vector<uint8_t>(def.keySize, 1);
            del.ops.push_back(std::move(op));
            sched.txns.push_back(std::move(del));
            cycle += 40;
        }
        CtlController ctrl(sim, maps, cc);
        const CtlRunReport report = ctrl.run(sched);
        sim.drain();
        ASSERT_EQ(sim.stats().completed, packets.size());

        MapSet vm_maps(spec.prog.maps);
        spec.seedMaps(vm_maps);
        const CtlVmReplayResult replay = replayScheduleOnVm(
            spec.prog, {}, packets, report, 0, vm_maps);
        const auto outcomes = sim.outcomes();
        ASSERT_EQ(outcomes.size(), replay.outcomes.size());
        for (size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_EQ(outcomes[i].id, replay.outcomes[i].id);
            EXPECT_EQ(outcomes[i].action, replay.outcomes[i].action)
                << "packet " << outcomes[i].id;
            EXPECT_EQ(outcomes[i].trapped, replay.outcomes[i].trapped);
            EXPECT_EQ(outcomes[i].redirectIfindex,
                      replay.outcomes[i].redirectIfindex);
            EXPECT_EQ(outcomes[i].bytes, replay.outcomes[i].bytes);
        }
        for (size_t t = 0; t < report.txns.size(); ++t)
            EXPECT_EQ(report.txns[t].results[0], replay.txnResults[t]);
        EXPECT_TRUE(MapSet::equal(maps, vm_maps));
    }
}

}  // namespace
}  // namespace ehdl::ctl
