/**
 * @file
 * Incremental cycle-core tests: the refactored per-cycle engine (hazard
 * summaries, batch-committed write arenas, copy-on-write checkpoints,
 * event-driven scheduling) is contracted to be bit-identical to the
 * dense reference behaviour. These tests exercise the contract across
 * uniform / Zipf / churn workloads and both simulation engines:
 *
 *  - paranoid mode cross-checks every hazard-summary skip against the
 *    full read scan (a summary false negative panics the run);
 *  - event-driven scheduling must reproduce dense-tick cycle accounting
 *    exactly (cycles, stalls, flushes, per-packet entry/exit cycles);
 *  - COW checkpoints must actually materialize on forced flush-replay,
 *    and the restored state must keep VM parity;
 *  - MultiPipeSim must aggregate the new counters and reject the
 *    event-driven + shared-maps combination.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl::sim {
namespace {

using ebpf::MapSet;

/** A workload shape the cycle core must handle identically. */
struct Workload
{
    const char *name;
    double zipfS;
    uint64_t churnPeriod;
    /** Line rate; low rates open inter-arrival gaps so the event-driven
     *  scheduler actually has cycles to skip. */
    double lineRateGbps;
};

constexpr Workload kWorkloads[] = {
    {"uniform", 0.0, 0, 100.0},
    {"zipf", 1.2, 0, 100.0},
    {"churn", 0.0, 500, 100.0},
    {"uniform-sparse", 0.0, 0, 2.0},
    {"zipf-sparse", 1.2, 0, 0.5},
};

std::vector<net::Packet>
makePackets(const apps::AppSpec &spec, const Workload &w, int count,
            uint64_t num_flows = 64)
{
    TrafficConfig traffic;
    traffic.numFlows = num_flows;  // small: collision-heavy
    traffic.packetLen = 64;
    traffic.zipfS = w.zipfS;
    traffic.churnPeriod = w.churnPeriod;
    traffic.lineRateGbps = w.lineRateGbps;
    traffic.reverseFraction = spec.reverseFraction;
    traffic.ipProto = spec.ipProto;
    TrafficGen gen(traffic);
    std::vector<net::Packet> packets;
    packets.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        packets.push_back(gen.next());
    return packets;
}

struct RunResult
{
    PipeSimStats stats;
    std::vector<PacketOutcome> outcomes;
    MapSet maps;
};

RunResult
runOnce(const apps::AppSpec &spec, const hdl::Pipeline &pipe,
        const std::vector<net::Packet> &packets, PipeSimConfig config)
{
    RunResult out;
    out.maps = MapSet(spec.prog.maps);
    spec.seedMaps(out.maps);
    config.inputQueueCapacity = 1u << 18;
    PipeSim sim(pipe, out.maps, config);
    for (const net::Packet &pkt : packets)
        sim.offer(pkt);
    sim.drain();
    out.stats = sim.stats();
    out.outcomes = sim.outcomes();
    return out;
}

/** The pre-refactor stats vocabulary — every field the bit-identical
 *  contract covers. The new instrumentation counters (hazard/commit/
 *  checkpoint/event) are diagnostics and intentionally excluded. */
void
expectSameAccounting(const PipeSimStats &a, const PipeSimStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.flushEvents, b.flushEvents);
    EXPECT_EQ(a.flushedPackets, b.flushedPackets);
    EXPECT_EQ(a.replayedStages, b.replayedStages);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
}

void
expectSameOutcomes(const std::vector<PacketOutcome> &a,
                   const std::vector<PacketOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "outcome " << i;
        EXPECT_EQ(a[i].action, b[i].action) << "outcome " << i;
        EXPECT_EQ(a[i].redirectIfindex, b[i].redirectIfindex);
        EXPECT_EQ(a[i].trapped, b[i].trapped);
        EXPECT_EQ(a[i].entryCycle, b[i].entryCycle) << "outcome " << i;
        EXPECT_EQ(a[i].exitCycle, b[i].exitCycle) << "outcome " << i;
        EXPECT_EQ(a[i].bytes, b[i].bytes) << "outcome " << i;
    }
}

std::vector<apps::AppSpec>
hazardApps()
{
    // Apps whose map write-back traffic forces flush-replay under
    // collision-heavy flows: conntrack-style firewall and DNAT, plus
    // the elastic-demo pipeline whose restarts go through the COW
    // checkpoint chain instead of a full stage-0 replay.
    std::vector<apps::AppSpec> specs;
    specs.push_back(apps::makeSimpleFirewall());
    specs.push_back(apps::makeDnat());
    specs.push_back(apps::makeElasticDemo());
    return specs;
}

TEST(CycleCore, ParanoidModeCrossChecksHazardSummaries)
{
    // Flush-heavy workloads under paranoid mode: every summary-gated
    // hazard decision is re-derived with the full read scan and a
    // mismatch panics. Surviving the run is the assertion.
    for (apps::AppSpec &spec : hazardApps()) {
        spec.reverseFraction = 0.5;  // bidirectional flows collide more
        const hdl::Pipeline pipe = hdl::compile(spec.prog);
        const std::vector<net::Packet> packets =
            makePackets(spec, kWorkloads[2], 4000, 16);
        for (const SimEngine engine :
             {SimEngine::Interp, SimEngine::Aot}) {
            PipeSimConfig config;
            config.engine = engine;
            config.paranoidChecks = true;
            const RunResult r = runOnce(spec, pipe, packets, config);
            EXPECT_GT(r.stats.flushEvents, 0u)
                << "workload failed to force flush-replay";
            EXPECT_GT(r.stats.hazardChecks, 0u);
        }
    }
}

TEST(CycleCore, EventDrivenMatchesDenseTickAccounting)
{
    for (apps::AppSpec &spec : hazardApps()) {
        spec.reverseFraction = 0.25;
        const hdl::Pipeline pipe = hdl::compile(spec.prog);
        for (const Workload &w : kWorkloads) {
            const std::vector<net::Packet> packets =
                makePackets(spec, w, 2500, 32);
            for (const SimEngine engine :
                 {SimEngine::Interp, SimEngine::Aot}) {
                PipeSimConfig dense;
                dense.engine = engine;
                PipeSimConfig event = dense;
                event.schedMode = SchedMode::EventDriven;
                const RunResult d = runOnce(spec, pipe, packets, dense);
                const RunResult e = runOnce(spec, pipe, packets, event);
                SCOPED_TRACE(std::string(w.name) + " engine=" +
                             (engine == SimEngine::Interp ? "interp"
                                                          : "aot"));
                expectSameAccounting(d.stats, e.stats);
                expectSameOutcomes(d.outcomes, e.outcomes);
                EXPECT_TRUE(MapSet::equal(d.maps, e.maps));
                // Dense mode must never take the event path.
                EXPECT_EQ(d.stats.eventJumps, 0u);
            }
        }
    }
}

TEST(CycleCore, EventDrivenSkipsCyclesOnSparseArrivals)
{
    // At 0.5 Gb/s a 64B frame arrives every ~1.3 us while the pipeline
    // clocks at 4 ns — the event scheduler must be jumping, not ticking.
    apps::AppSpec spec = apps::makeRouterIpv4();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const std::vector<net::Packet> packets =
        makePackets(spec, kWorkloads[4], 1500, 64);
    PipeSimConfig config;
    config.schedMode = SchedMode::EventDriven;
    const RunResult r = runOnce(spec, pipe, packets, config);
    EXPECT_GT(r.stats.eventJumps, 0u);
    EXPECT_GT(r.stats.eventSkippedCycles, 0u);
    // Skipped cycles are still accounted: total cycles include them.
    EXPECT_GE(r.stats.cycles, r.stats.eventSkippedCycles);
}

TEST(CycleCore, CowCheckpointsMaterializeOnFlushReplay)
{
    // The elastic-demo app restarts flushed flights from its elastic
    // buffer rather than stage 0; the restart restores from the COW
    // checkpoint chain, so with two colliding flows materializations
    // must be observed — and the restored state must stay VM-exact.
    apps::AppSpec spec = apps::makeElasticDemo();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    ASSERT_FALSE(pipe.elasticBuffers.empty());
    const std::vector<net::Packet> packets =
        makePackets(spec, kWorkloads[0], 2000, 2);

    PipeSimConfig config;
    config.paranoidChecks = true;
    const RunResult r = runOnce(spec, pipe, packets, config);
    EXPECT_GT(r.stats.flushEvents, 0u);
    EXPECT_GT(r.stats.checkpointsTaken, 0u);
    EXPECT_GT(r.stats.checkpointsMaterialized, 0u);

    // VM parity: the same packet sequence through the reference VM must
    // agree on every action and on final map contents.
    MapSet vm_maps(spec.prog.maps);
    spec.seedMaps(vm_maps);
    ebpf::Vm vm(spec.prog, vm_maps);
    ASSERT_EQ(r.outcomes.size(), packets.size());
    for (size_t i = 0; i < packets.size(); ++i) {
        net::Packet copy = packets[i];
        const ebpf::ExecResult res = vm.run(copy);
        EXPECT_EQ(r.outcomes[i].action, res.action) << "packet " << i;
        EXPECT_EQ(r.outcomes[i].bytes, copy.bytes()) << "packet " << i;
    }
    EXPECT_TRUE(MapSet::equal(r.maps, vm_maps));
}

TEST(CycleCore, MultiPipeSimAggregatesEventCounters)
{
    apps::AppSpec spec = apps::makeRouterIpv4();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const std::vector<net::Packet> packets =
        makePackets(spec, kWorkloads[3], 2000, 64);

    const auto run = [&](SchedMode mode) {
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        MultiPipeSimConfig mc;
        mc.numReplicas = 4;
        mc.mapMode = MapMode::Sharded;
        mc.pipe.inputQueueCapacity = 1u << 18;
        mc.pipe.schedMode = mode;
        MultiPipeSim sim(pipe, maps, mc);
        for (const net::Packet &pkt : packets)
            sim.offer(pkt);
        sim.drain();
        return sim.stats();
    };
    const PipeSimStats dense = run(SchedMode::Dense);
    const PipeSimStats event = run(SchedMode::EventDriven);
    // Aggregated accounting matches dense run for dense-contract fields.
    EXPECT_EQ(dense.offered, event.offered);
    EXPECT_EQ(dense.accepted, event.accepted);
    EXPECT_EQ(dense.completed, event.completed);
    EXPECT_EQ(dense.cycles, event.cycles);
    EXPECT_EQ(dense.flushEvents, event.flushEvents);
    EXPECT_EQ(dense.stallCycles, event.stallCycles);
    // The event run's replica counters aggregate into the summary.
    EXPECT_GT(event.eventJumps, 0u);
    EXPECT_EQ(dense.eventJumps, 0u);
}

TEST(CycleCore, EventDrivenRejectsSharedMaps)
{
    apps::AppSpec spec = apps::makeToyCounter();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    MultiPipeSimConfig mc;
    mc.numReplicas = 2;
    mc.mapMode = MapMode::Shared;
    mc.pipe.schedMode = SchedMode::EventDriven;
    EXPECT_THROW(MultiPipeSim(pipe, maps, mc), FatalError);
}

}  // namespace
}  // namespace ehdl::sim
