/**
 * @file
 * Differential testing: the hazard-managed parallel pipeline must be
 * observationally equivalent to the sequential reference VM — same XDP
 * action, same output bytes, same redirect target, and identical final
 * map state — for every application, across flow distributions chosen to
 * maximize hazard pressure, and for randomized branchy ALU programs.
 *
 * This is the correctness claim behind paper section 4.1: the WAR delay
 * buffers, flush-evaluation blocks, atomic primitives and elastic buffers
 * together preserve sequential semantics.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "sim/pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl {
namespace {

using apps::AppSpec;
using ebpf::MapSet;
using ebpf::Program;
using ebpf::Vm;

struct DiffResult
{
    int mismatches = 0;
    bool mapsEqual = false;
    uint64_t flushes = 0;
};

DiffResult
runDifferential(const AppSpec &spec, uint64_t num_flows, int num_packets,
                uint64_t seed, double reverse_fraction)
{
    const hdl::Pipeline pipe = hdl::compile(spec.prog);

    MapSet vm_maps(spec.prog.maps), pipe_maps(spec.prog.maps);
    spec.seedMaps(vm_maps);
    spec.seedMaps(pipe_maps);

    sim::TrafficConfig config;
    config.numFlows = num_flows;
    config.reverseFraction = reverse_fraction;
    config.seed = seed;
    config.ipProto = spec.ipProto;
    sim::TrafficGen gen(config);

    std::vector<net::Packet> packets;
    for (int i = 0; i < num_packets; ++i)
        packets.push_back(gen.next());

    sim::PipeSimConfig sim_config;
    sim_config.inputQueueCapacity = 1u << 20;
    sim::PipeSim sim(pipe, pipe_maps, sim_config);
    for (const net::Packet &pkt : packets)
        sim.offer(pkt);
    sim.drain();
    EXPECT_EQ(sim.stats().completed, static_cast<uint64_t>(num_packets));

    std::map<uint64_t, const sim::PacketOutcome *> by_id;
    for (const sim::PacketOutcome &out : sim.outcomes())
        by_id[out.id] = &out;

    Vm vm(spec.prog, vm_maps);
    DiffResult result;
    for (const net::Packet &pkt : packets) {
        net::Packet copy = pkt;
        const ebpf::ExecResult ref = vm.run(copy);
        const sim::PacketOutcome *out = by_id.at(pkt.id);
        const bool same =
            static_cast<uint32_t>(ref.action) ==
                static_cast<uint32_t>(out->action) &&
            copy.bytes() == out->bytes &&
            ref.redirectIfindex == out->redirectIfindex;
        if (!same)
            ++result.mismatches;
    }
    result.mapsEqual = MapSet::equal(vm_maps, pipe_maps);
    result.flushes = sim.stats().flushEvents;
    return result;
}

struct DiffCase
{
    const char *name;
    AppSpec (*make)();
    uint64_t flows;
    double reverse;
};

class AppDifferentialTest : public ::testing::TestWithParam<DiffCase>
{
};

TEST_P(AppDifferentialTest, PipelineMatchesVm)
{
    const DiffCase &c = GetParam();
    const DiffResult result =
        runDifferential(c.make(), c.flows, 2500, 17, c.reverse);
    EXPECT_EQ(result.mismatches, 0);
    EXPECT_TRUE(result.mapsEqual);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppDifferentialTest,
    ::testing::Values(
        DiffCase{"toy_many", apps::makeToyCounter, 100, 0.0},
        DiffCase{"toy_single", apps::makeToyCounter, 1, 0.0},
        DiffCase{"firewall_many", apps::makeSimpleFirewall, 200, 0.3},
        DiffCase{"firewall_collide", apps::makeSimpleFirewall, 4, 0.5},
        DiffCase{"router_many", apps::makeRouterIpv4, 500, 0.0},
        DiffCase{"tunnel_many", apps::makeTxIpTunnel, 300, 0.0},
        DiffCase{"dnat_many", apps::makeDnat, 150, 0.0},
        DiffCase{"dnat_collide", apps::makeDnat, 3, 0.0},
        DiffCase{"suricata_many", apps::makeSuricataFilter, 100, 0.0},
        DiffCase{"leaky_many", apps::makeLeakyBucket, 64, 0.0},
        DiffCase{"leaky_collide", apps::makeLeakyBucket, 2, 0.0},
        DiffCase{"leaky_single", apps::makeLeakyBucket, 1, 0.0},
        DiffCase{"elastic_collide", apps::makeElasticDemo, 3, 0.0},
        DiffCase{"elastic_many", apps::makeElasticDemo, 64, 0.0},
        DiffCase{"sampler", apps::makeMonitorSampler, 32, 0.0},
        DiffCase{"l4_lb", apps::makeL4LoadBalancer, 40, 0.0},
        DiffCase{"ipip_decap", apps::makeIpipDecap, 40, 0.0}),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        return info.param.name;
    });

TEST(Differential, AdversarialSingleFlowStillCorrect)
{
    // The section 5.3 stress case: every packet hits the same map entry.
    const DiffResult result =
        runDifferential(apps::makeLeakyBucket(), 1, 3000, 7, 0.0);
    EXPECT_EQ(result.mismatches, 0);
    EXPECT_TRUE(result.mapsEqual);
    EXPECT_GT(result.flushes, 2000u);  // nearly every packet flushes
}

TEST(Differential, SeedSweepOnHazardHeavyApps)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        for (auto make : {apps::makeLeakyBucket, apps::makeDnat,
                          apps::makeSimpleFirewall}) {
            const AppSpec spec = make();
            const DiffResult result =
                runDifferential(spec, 5 + seed * 3, 800, seed,
                                spec.reverseFraction);
            EXPECT_EQ(result.mismatches, 0)
                << spec.prog.name << " seed " << seed;
            EXPECT_TRUE(result.mapsEqual)
                << spec.prog.name << " seed " << seed;
        }
    }
}

TEST(Differential, SuricataWithSeededBypass)
{
    AppSpec spec = apps::makeSuricataFilter();
    sim::TrafficConfig probe_config;
    probe_config.numFlows = 50;
    sim::TrafficGen probe(probe_config);
    std::vector<net::FlowKey> bypassed;
    for (uint64_t rank = 0; rank < 50; rank += 2)
        bypassed.push_back(probe.flowOf(rank));
    spec.seedMaps = [bypassed](MapSet &maps) {
        apps::seedSuricataBypass(maps, bypassed);
    };
    const DiffResult result = runDifferential(spec, 50, 2000, 5, 0.0);
    EXPECT_EQ(result.mismatches, 0);
    EXPECT_TRUE(result.mapsEqual);
}

/**
 * Random branchy ALU+stack programs: no maps, so this isolates the
 * predication/scheduling machinery from the hazard machinery.
 */
class RandomProgramTest : public ::testing::TestWithParam<uint64_t>
{
};

Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ebpf::ProgramBuilder b("rand");
    // Initialize registers and a few stack slots.
    for (unsigned r = 1; r <= 9; ++r)
        b.mov(r, static_cast<int32_t>(rng.next()));
    for (unsigned s = 1; s <= 4; ++s)
        b.stx(ebpf::MemSize::DW, 10, -8 * static_cast<int16_t>(s), s);

    const unsigned segments = 2 + rng.below(4);
    for (unsigned seg = 0; seg < segments; ++seg) {
        const std::string label = "seg" + std::to_string(seg);
        // Random forward branch over a few ops.
        b.jcond(static_cast<ebpf::JmpOp>(
                    std::array<ebpf::JmpOp, 4>{
                        ebpf::JmpOp::Jeq, ebpf::JmpOp::Jgt,
                        ebpf::JmpOp::Jsgt, ebpf::JmpOp::Jset}[rng.below(4)]),
                1 + rng.below(9), static_cast<int64_t>(rng.below(64)),
                label);
        const unsigned ops = 1 + rng.below(5);
        for (unsigned i = 0; i < ops; ++i) {
            const unsigned dst = 1 + rng.below(9);
            const unsigned src = 1 + rng.below(9);
            switch (rng.below(6)) {
              case 0: b.aluReg(ebpf::AluOp::Add, dst, src); break;
              case 1: b.aluReg(ebpf::AluOp::Xor, dst, src); break;
              case 2: b.alu(ebpf::AluOp::Lsh, dst, rng.below(63)); break;
              case 3: b.stx(ebpf::MemSize::DW, 10,
                            -8 * static_cast<int16_t>(1 + rng.below(4)),
                            dst);
                break;
              case 4: b.ldx(ebpf::MemSize::DW, dst, 10,
                            -8 * static_cast<int16_t>(1 + rng.below(4)));
                break;
              case 5: b.alu32(ebpf::AluOp::Add, dst,
                              static_cast<int32_t>(rng.next()));
                break;
            }
        }
        b.label(label);
    }
    // Fold state into r0 and produce a valid action.
    b.movReg(0, 1);
    for (unsigned r = 2; r <= 9; ++r)
        b.aluReg(ebpf::AluOp::Xor, 0, r);
    b.ldx(ebpf::MemSize::DW, 1, 10, -8);
    b.aluReg(ebpf::AluOp::Xor, 0, 1);
    b.alu(ebpf::AluOp::And, 0, 3);  // action in {0..3}
    b.exit();
    return b.build();
}

TEST_P(RandomProgramTest, PipelineMatchesVm)
{
    const Program prog = randomProgram(GetParam());
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet vm_maps(prog.maps), pipe_maps(prog.maps);

    sim::PipeSimConfig config;
    config.inputQueueCapacity = 4096;
    sim::PipeSim sim(pipe, pipe_maps, config);
    Vm vm(prog, vm_maps);

    net::PacketSpec spec;
    for (int i = 1; i <= 32; ++i) {
        net::Packet pkt = net::PacketFactory::build(spec);
        pkt.id = static_cast<uint64_t>(i);
        sim.offer(pkt);
    }
    sim.drain();
    ASSERT_EQ(sim.outcomes().size(), 32u);
    net::Packet ref_pkt = net::PacketFactory::build(spec);
    ref_pkt.id = 1;
    const ebpf::ExecResult ref = vm.run(ref_pkt);
    for (const sim::PacketOutcome &out : sim.outcomes()) {
        EXPECT_EQ(static_cast<uint32_t>(out.action),
                  static_cast<uint32_t>(ref.action))
            << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(0, 60));

/**
 * Random *map-access* programs: lookup -> branch -> a random interleaving
 * of value loads, ALU and value stores on the hit path, update on the
 * miss path. Run under colliding traffic so the hazard machinery (flush
 * windows, speculation parking, forwarding) is exercised combinatorially.
 * Patterns the compiler rejects as unsupported are skipped — the claim
 * under test is "whatever compiles is sequentially correct".
 */
class RandomMapProgramTest : public ::testing::TestWithParam<uint64_t>
{
};

Program
randomMapProgram(uint64_t seed)
{
    Rng rng(seed);
    ebpf::ProgramBuilder b("mapfuzz");
    const uint32_t flows =
        b.addMap({"flows", ebpf::MapKind::Hash, 4, 16, 256});

    // Prologue: bounds check, source address as the flow key.
    b.ldx(ebpf::MemSize::W, 2, 1, 4);
    b.ldx(ebpf::MemSize::W, 6, 1, 0);
    b.movReg(3, 6);
    b.alu(ebpf::AluOp::Add, 3, 34);
    b.jcondReg(ebpf::JmpOp::Jgt, 3, 2, "pass");
    b.ldx(ebpf::MemSize::W, 7, 6, 26);
    b.stx(ebpf::MemSize::W, 10, -4, 7);
    // A second packet-derived value for stores.
    b.ldx(ebpf::MemSize::W, 8, 6, 30);

    b.ldMap(1, flows);
    b.movReg(2, 10);
    b.alu(ebpf::AluOp::Add, 2, -4);
    b.call(1);
    b.jcond(ebpf::JmpOp::Jeq, 0, 0, "miss");

    // Hit path: random interleaving over the two value fields.
    const unsigned ops = 2 + rng.below(7);
    bool loaded3 = false;
    for (unsigned i = 0; i < ops; ++i) {
        switch (rng.below(5)) {
          case 0:
            b.ldx(ebpf::MemSize::DW, 3, 0,
                  static_cast<int16_t>(8 * rng.below(2)));
            loaded3 = true;
            break;
          case 1:
            if (loaded3)
                b.alu(ebpf::AluOp::Add, 3,
                      static_cast<int32_t>(rng.below(1000)));
            break;
          case 2:
            if (loaded3)
                b.aluReg(ebpf::AluOp::Xor, 3, 8);
            break;
          case 3:
            if (loaded3)
                b.stx(ebpf::MemSize::DW, 0,
                      static_cast<int16_t>(8 * rng.below(2)), 3);
            break;
          case 4:
            b.stx(ebpf::MemSize::DW, 0,
                  static_cast<int16_t>(8 * rng.below(2)), 8);
            break;
        }
    }
    b.mov(0, 2);
    b.exit();

    // Miss path: create the record from packet-derived state.
    b.label("miss");
    b.stx(ebpf::MemSize::DW, 10, -24, 8);
    b.mov(3, static_cast<int32_t>(rng.below(100000)));
    b.stx(ebpf::MemSize::DW, 10, -16, 3);
    b.ldMap(1, flows);
    b.movReg(2, 10);
    b.alu(ebpf::AluOp::Add, 2, -4);
    b.movReg(3, 10);
    b.alu(ebpf::AluOp::Add, 3, -24);
    b.mov(4, 0);
    b.call(2);
    b.mov(0, 2);
    b.exit();

    b.label("pass");
    b.mov(0, 2);
    b.exit();
    return b.build();
}

TEST_P(RandomMapProgramTest, HazardMachineryPreservesSequentialSemantics)
{
    const Program prog = randomMapProgram(GetParam());
    hdl::Pipeline pipe;
    try {
        pipe = hdl::compile(prog);
    } catch (const FatalError &e) {
        // The compiler may reject unsupported access patterns; that is a
        // documented, fail-closed outcome, not a correctness bug.
        GTEST_SKIP() << "pattern rejected: " << e.what();
    }

    MapSet vm_maps(prog.maps), pipe_maps(prog.maps);
    sim::TrafficConfig config;
    config.numFlows = 2 + GetParam() % 5;  // collision-heavy
    config.seed = GetParam() * 31 + 7;
    sim::TrafficGen gen(config);
    std::vector<net::Packet> packets;
    for (int i = 0; i < 600; ++i)
        packets.push_back(gen.next());

    sim::PipeSimConfig sim_config;
    sim_config.inputQueueCapacity = 1u << 16;
    sim::PipeSim sim(pipe, pipe_maps, sim_config);
    for (const net::Packet &pkt : packets)
        sim.offer(pkt);
    sim.drain();

    Vm vm(prog, vm_maps);
    std::map<uint64_t, const sim::PacketOutcome *> by_id;
    for (const sim::PacketOutcome &out : sim.outcomes())
        by_id[out.id] = &out;
    for (const net::Packet &pkt : packets) {
        net::Packet copy = pkt;
        const ebpf::ExecResult ref = vm.run(copy);
        ASSERT_EQ(static_cast<uint32_t>(ref.action),
                  static_cast<uint32_t>(by_id.at(pkt.id)->action));
    }
    EXPECT_TRUE(MapSet::equal(vm_maps, pipe_maps))
        << "seed " << GetParam() << "\npipe:\n"
        << pipe_maps.dump().substr(0, 600) << "\nvm:\n"
        << vm_maps.dump().substr(0, 600);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMapProgramTest,
                         ::testing::Range<uint64_t>(0, 80));

}  // namespace
}  // namespace ehdl
