/**
 * @file
 * ELF object tests: write/load round trips preserving instructions, maps
 * and relocations; structural validation; and an end-to-end check that a
 * program loaded from ELF compiles and runs identically.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ebpf/elf.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "net/headers.hpp"
#include "sim/pipe_sim.hpp"

namespace ehdl::ebpf {
namespace {

void
expectSamePrograms(const Program &a, const Program &b)
{
    ASSERT_EQ(a.insns.size(), b.insns.size());
    for (size_t i = 0; i < a.insns.size(); ++i) {
        EXPECT_EQ(a.insns[i].opcode, b.insns[i].opcode) << "insn " << i;
        EXPECT_EQ(a.insns[i].dst, b.insns[i].dst) << "insn " << i;
        EXPECT_EQ(a.insns[i].off, b.insns[i].off) << "insn " << i;
        EXPECT_EQ(a.insns[i].imm, b.insns[i].imm) << "insn " << i;
        EXPECT_EQ(a.insns[i].isMapLoad, b.insns[i].isMapLoad)
            << "insn " << i;
    }
    ASSERT_EQ(a.maps.size(), b.maps.size());
    for (size_t m = 0; m < a.maps.size(); ++m) {
        EXPECT_EQ(a.maps[m].name, b.maps[m].name);
        EXPECT_EQ(a.maps[m].kind, b.maps[m].kind);
        EXPECT_EQ(a.maps[m].keySize, b.maps[m].keySize);
        EXPECT_EQ(a.maps[m].valueSize, b.maps[m].valueSize);
        EXPECT_EQ(a.maps[m].maxEntries, b.maps[m].maxEntries);
    }
}

TEST(Elf, RoundTripToyCounter)
{
    const Program prog = apps::makeToyCounter().prog;
    const std::vector<uint8_t> object = writeElf(prog);
    EXPECT_GT(object.size(), 64u);
    EXPECT_EQ(object[0], 0x7f);
    const Program loaded = loadElf(object, prog.name);
    expectSamePrograms(prog, loaded);
}

TEST(Elf, RoundTripAllApps)
{
    std::vector<apps::AppSpec> all = apps::paperApps();
    all.push_back(apps::makeLeakyBucket());
    all.push_back(apps::makeMonitorSampler());
    for (const apps::AppSpec &spec : all) {
        const Program loaded =
            loadElf(writeElf(spec.prog), spec.prog.name);
        expectSamePrograms(spec.prog, loaded);
    }
}

TEST(Elf, RelocationsRestoreMapReferences)
{
    const Program prog = apps::makeDnat().prog;  // two maps
    const Program loaded = loadElf(writeElf(prog), "dnat");
    unsigned map_loads = 0;
    for (const Insn &insn : loaded.insns)
        map_loads += insn.isMapLoad ? 1 : 0;
    EXPECT_GE(map_loads, 4u);
    EXPECT_EQ(loaded.maps[0].name, "nat");
    EXPECT_EQ(loaded.maps[1].name, "rnat");
}

TEST(Elf, DefaultNameComesFromSection)
{
    const Program prog = apps::makeToyCounter().prog;
    const Program loaded = loadElf(writeElf(prog));
    EXPECT_EQ(loaded.name, "xdp");
}

TEST(Elf, LoadedProgramRunsIdentically)
{
    const apps::AppSpec spec = apps::makeSimpleFirewall();
    const Program loaded = loadElf(writeElf(spec.prog), "fw");

    MapSet maps_a(spec.prog.maps), maps_b(loaded.maps);
    Vm vm_a(spec.prog, maps_a), vm_b(loaded, maps_b);
    net::PacketSpec pkt_spec;
    pkt_spec.flow = {0x0a000001, 0xc0a80001, 4000, 53, net::kIpProtoUdp};
    for (int i = 0; i < 20; ++i) {
        net::Packet p1 = net::PacketFactory::build(pkt_spec);
        net::Packet p2 = net::PacketFactory::build(pkt_spec);
        const ExecResult a = vm_a.run(p1);
        const ExecResult b = vm_b.run(p2);
        EXPECT_EQ(static_cast<uint32_t>(a.action),
                  static_cast<uint32_t>(b.action));
    }
    EXPECT_TRUE(MapSet::equal(maps_a, maps_b));
}

TEST(Elf, LoadedProgramCompilesToSamePipeline)
{
    const Program prog = apps::makeRouterIpv4().prog;
    const Program loaded = loadElf(writeElf(prog), prog.name);
    const hdl::Pipeline a = hdl::compile(prog);
    const hdl::Pipeline b = hdl::compile(loaded);
    EXPECT_EQ(a.numStages(), b.numStages());
    EXPECT_EQ(a.flushBlocks.size(), b.flushBlocks.size());
    EXPECT_EQ(a.mapPorts.size(), b.mapPorts.size());
}

TEST(Elf, RejectsGarbage)
{
    EXPECT_THROW(loadElf({1, 2, 3, 4}), FatalError);
    std::vector<uint8_t> bad(128, 0);
    std::memcpy(bad.data(), "\x7f"
                            "ELF",
                4);
    bad[4] = 1;  // 32-bit: unsupported
    EXPECT_THROW(loadElf(bad), FatalError);
}

TEST(Elf, RejectsTruncatedObject)
{
    std::vector<uint8_t> object = writeElf(apps::makeToyCounter().prog);
    object.resize(object.size() / 2);
    EXPECT_THROW(loadElf(object), FatalError);
}

TEST(Elf, MissingSectionNameFails)
{
    const std::vector<uint8_t> object =
        writeElf(apps::makeToyCounter().prog);
    EXPECT_THROW(loadElf(object, "", "no_such_section"), FatalError);
}

}  // namespace
}  // namespace ehdl::ebpf
