/**
 * @file
 * Unit tests of the shared execution core (ebpf::ExecState): tagged-value
 * semantics, stack pointer-spill shadowing, checkpoint/restore (the
 * machinery behind flush replay), and the DirectMapIo plumbing — below
 * the level the VM/differential suites exercise.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/exec.hpp"
#include "net/headers.hpp"

namespace ehdl::ebpf {
namespace {

struct ExecFixture
{
    ExecFixture()
        : prog(makeProg()), maps(prog.maps), mapio(maps),
          pkt(net::PacketFactory::build(net::PacketSpec{})),
          state(prog, &pkt, &mapio)
    {
    }

    static Program
    makeProg()
    {
        ProgramBuilder b("exec");
        b.addMap({"m", MapKind::Hash, 4, 16, 8});
        b.mov(0, 0);
        b.exit();
        return b.build();
    }

    Insn
    aluImm(AluOp op, unsigned dst, int32_t imm,
           InsnClass cls = InsnClass::Alu64)
    {
        Insn insn;
        insn.opcode = makeAluOpcode(cls, op, SrcKind::K);
        insn.dst = dst;
        insn.imm = imm;
        return insn;
    }

    Program prog;
    MapSet maps;
    DirectMapIo mapio;
    net::Packet pkt;
    ExecState state;
};

TEST(ExecState, InitialRegisters)
{
    ExecFixture f;
    EXPECT_EQ(f.state.regs[1].tag, PtrTag::Ctx);
    EXPECT_EQ(f.state.regs[10].tag, PtrTag::Stack);
    EXPECT_EQ(f.state.regs[10].bits, kStackSize);
    for (unsigned r : {0u, 2u, 3u, 9u})
        EXPECT_EQ(f.state.regs[r].tag, PtrTag::Scalar);
}

TEST(ExecState, CtxLoadsProducePointers)
{
    ExecFixture f;
    const VmValue data = f.state.load(f.state.regs[1], kXdpMdData, 4);
    EXPECT_EQ(data.tag, PtrTag::Packet);
    EXPECT_EQ(data.bits, 0u);
    const VmValue end = f.state.load(f.state.regs[1], kXdpMdDataEnd, 4);
    EXPECT_EQ(end.tag, PtrTag::PacketEnd);
    EXPECT_EQ(end.bits, f.pkt.size());
    EXPECT_THROW(f.state.load(f.state.regs[1], 2, 4), VmTrap);  // misaligned
}

TEST(ExecState, PointerArithmeticRules)
{
    ExecFixture f;
    // ptr += imm adjusts the offset.
    f.state.regs[2] = f.state.load(f.state.regs[1], kXdpMdData, 4);
    f.state.execute(f.aluImm(AluOp::Add, 2, 14));
    EXPECT_EQ(f.state.regs[2].tag, PtrTag::Packet);
    EXPECT_EQ(f.state.regs[2].bits, 14u);
    // ptr * imm traps.
    EXPECT_THROW(f.state.execute(f.aluImm(AluOp::Mul, 2, 2)), VmTrap);
    // 32-bit ALU on a pointer traps.
    EXPECT_THROW(
        f.state.execute(f.aluImm(AluOp::Add, 2, 1, InsnClass::Alu)),
        VmTrap);
}

TEST(ExecState, StackShadowPreservesSpilledPointers)
{
    ExecFixture f;
    VmValue pkt_ptr = f.state.load(f.state.regs[1], kXdpMdData, 4);
    pkt_ptr.bits = 12;
    // Spill at an aligned slot and reload: the tag survives.
    f.state.store(f.state.regs[10], -8, 8, pkt_ptr);
    const VmValue back = f.state.load(f.state.regs[10], -8, 8);
    EXPECT_EQ(back.tag, PtrTag::Packet);
    EXPECT_EQ(back.bits, 12u);
    // A byte store into the slot invalidates the shadow.
    f.state.store(f.state.regs[10], -5, 1, VmValue::scalar(0xff));
    const VmValue after = f.state.load(f.state.regs[10], -8, 8);
    EXPECT_EQ(after.tag, PtrTag::Scalar);
}

TEST(ExecState, UnalignedSpillHasNoShadow)
{
    ExecFixture f;
    VmValue pkt_ptr = f.state.load(f.state.regs[1], kXdpMdData, 4);
    f.state.store(f.state.regs[10], -12, 8, pkt_ptr);  // not 8-aligned
    EXPECT_EQ(f.state.load(f.state.regs[10], -12, 8).tag, PtrTag::Scalar);
}

TEST(ExecState, CheckpointRestoreRoundTrip)
{
    ExecFixture f;
    f.state.regs[3] = VmValue::scalar(77);
    f.state.store(f.state.regs[10], -16, 8, VmValue::scalar(0xabcd));
    const ExecState::Checkpoint cp = f.state.checkpoint();

    f.state.regs[3] = VmValue::scalar(1);
    f.state.store(f.state.regs[10], -16, 8, VmValue::scalar(0));
    f.state.restore(cp);
    EXPECT_EQ(f.state.regs[3].bits, 77u);
    EXPECT_EQ(f.state.load(f.state.regs[10], -16, 8).bits, 0xabcdu);
}

TEST(ExecState, PrunedCheckpointOverloadsAgree)
{
    ExecFixture f;
    f.state.regs[3] = VmValue::scalar(77);
    f.state.regs[5] = VmValue::scalar(0xdead);
    f.state.store(f.state.regs[10], -16, 8, VmValue::scalar(0xabcd));
    f.state.store(f.state.regs[10], -64, 8, VmValue::scalar(0xfeed));

    // Only r3 and slot -16 (slot index (512-16)/8 = 62) are "live".
    const uint16_t live_regs = 1u << 3;
    std::bitset<kStackSize> live_stack;
    for (unsigned b = 0; b < 8; ++b)
        live_stack[62 * 8 + b] = true;
    const std::vector<uint16_t> live_slots = {62};

    ExecState::Checkpoint by_bits, by_slots;
    f.state.checkpointInto(by_bits, live_regs, live_stack);
    f.state.checkpointInto(by_slots, live_regs, live_slots);

    ASSERT_EQ(by_bits.stackSlots.size(), by_slots.stackSlots.size());
    ASSERT_EQ(by_slots.stackSlots.size(), 1u);
    EXPECT_EQ(by_bits.stackSlots[0].slot, by_slots.stackSlots[0].slot);
    EXPECT_EQ(by_bits.stackSlots[0].bytes, by_slots.stackSlots[0].bytes);

    // The pruned checkpoint restores the live subset...
    f.state.regs[3] = VmValue::scalar(0);
    f.state.store(f.state.regs[10], -16, 8, VmValue::scalar(0));
    f.state.restore(by_slots);
    EXPECT_EQ(f.state.regs[3].bits, 77u);
    EXPECT_EQ(f.state.load(f.state.regs[10], -16, 8).bits, 0xabcdu);
    // ...and nothing else: the dead register was not recorded.
    EXPECT_EQ(f.state.regs[3].bits, 77u);
    f.state.regs[5] = VmValue::scalar(1);
    f.state.restore(by_slots);
    EXPECT_EQ(f.state.regs[5].bits, 1u);
}

TEST(ExecState, MapValueBoundsEnforced)
{
    ExecFixture f;
    std::vector<uint8_t> key(4, 9), value(16, 0);
    f.maps.at(0).hostUpdate(key, value);
    const int64_t entry = f.maps.at(0).lookup(key.data());
    ASSERT_GE(entry, 0);
    VmValue ptr;
    ptr.tag = PtrTag::MapValue;
    ptr.mapId = 0;
    ptr.entry = static_cast<uint64_t>(entry);
    f.state.store(ptr, 8, 8, VmValue::scalar(42));
    EXPECT_EQ(f.state.load(ptr, 8, 8).bits, 42u);
    EXPECT_THROW(f.state.load(ptr, 12, 8), VmTrap);   // spans the end
    EXPECT_THROW(f.state.store(ptr, -1, 1, VmValue::scalar(0)), VmTrap);
}

TEST(ExecState, CrossSpaceComparisonTraps)
{
    ExecFixture f;
    f.state.regs[2] = f.state.load(f.state.regs[1], kXdpMdData, 4);
    f.state.regs[3] = f.state.regs[10];  // stack pointer
    Insn cmp;
    cmp.opcode = makeJmpOpcode(InsnClass::Jmp, JmpOp::Jgt, SrcKind::X);
    cmp.dst = 2;
    cmp.src = 3;
    EXPECT_THROW(f.state.evalCond(cmp), VmTrap);
}

TEST(ExecState, PacketVsPacketEndComparison)
{
    ExecFixture f;
    f.state.regs[2] = f.state.load(f.state.regs[1], kXdpMdData, 4);
    f.state.regs[2].bits = 40;
    f.state.regs[3] = f.state.load(f.state.regs[1], kXdpMdDataEnd, 4);
    Insn cmp;
    cmp.opcode = makeJmpOpcode(InsnClass::Jmp, JmpOp::Jgt, SrcKind::X);
    cmp.dst = 2;
    cmp.src = 3;
    EXPECT_FALSE(f.state.evalCond(cmp));  // 40 <= packet size (>= 42)
    f.state.regs[2].bits = f.pkt.size() + 1;
    EXPECT_TRUE(f.state.evalCond(cmp));
}

TEST(ExecState, NullCheckOnPointer)
{
    ExecFixture f;
    VmValue ptr;
    ptr.tag = PtrTag::MapValue;
    Insn jeq;
    jeq.opcode = makeJmpOpcode(InsnClass::Jmp, JmpOp::Jeq, SrcKind::K);
    jeq.dst = 4;
    jeq.imm = 0;
    f.state.regs[4] = ptr;
    EXPECT_FALSE(f.state.evalCond(jeq));  // pointers are never null
    Insn jne = jeq;
    jne.opcode = makeJmpOpcode(InsnClass::Jmp, JmpOp::Jne, SrcKind::K);
    EXPECT_TRUE(f.state.evalCond(jne));
}

TEST(ExecState, ResetClearsEverything)
{
    ExecFixture f;
    f.state.regs[5] = VmValue::scalar(5);
    f.state.store(f.state.regs[10], -8, 8, VmValue::scalar(1));
    f.state.reset();
    EXPECT_EQ(f.state.regs[5].bits, 0u);
    EXPECT_EQ(f.state.load(f.state.regs[10], -8, 8).bits, 0u);
    EXPECT_EQ(f.state.regs[1].tag, PtrTag::Ctx);
}

TEST(DirectMapIo, ReadWriteAtomic)
{
    ExecFixture f;
    std::vector<uint8_t> key(4, 1), value(16, 0);
    f.maps.at(0).hostUpdate(key, value);
    const int64_t entry = f.mapio.lookup(0, key.data(), 0);
    ASSERT_GE(entry, 0);
    f.mapio.writeValue(0, entry, 0, 8, 100, 0);
    EXPECT_EQ(f.mapio.readValue(0, entry, 0, 8, 0), 100u);
    EXPECT_EQ(f.mapio.atomicAdd(0, entry, 0, 8, 5, 0), 100u);
    EXPECT_EQ(f.mapio.readValue(0, entry, 0, 8, 0), 105u);
    // Sub-word access.
    f.mapio.writeValue(0, entry, 4, 2, 0xbeef, 0);
    EXPECT_EQ(f.mapio.readValue(0, entry, 4, 2, 0), 0xbeefu);
}

}  // namespace
}  // namespace ehdl::ebpf
