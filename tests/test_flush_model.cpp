/**
 * @file
 * Analytic flush-model tests (paper appendix A.1): equations 1-3, the
 * Zipfian flush probabilities of table 4, and the hazard geometry
 * extraction feeding table 3.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "hdl/compiler.hpp"
#include "hdl/flush_model.hpp"

namespace ehdl::hdl {
namespace {

TEST(FlushModel, UniformProbabilityShape)
{
    // Equation 1: P = 1 - exp(-L^2 / 2N).
    EXPECT_DOUBLE_EQ(flushProbabilityUniform(0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(flushProbabilityUniform(1, 1000), 0.0);
    EXPECT_NEAR(flushProbabilityUniform(10, 50000), 0.000999, 1e-4);
    // Monotone in L, antitone in N.
    EXPECT_GT(flushProbabilityUniform(20, 1000),
              flushProbabilityUniform(10, 1000));
    EXPECT_LT(flushProbabilityUniform(10, 100000),
              flushProbabilityUniform(10, 1000));
}

TEST(FlushModel, ZipfProbabilityTable4)
{
    // Table 4 (50k flows, Zipfian): L=2 -> ~1%, L=3 -> ~3%, L=4 -> ~6%,
    // L=5 -> ~10%.
    const uint64_t n = 50000;
    EXPECT_NEAR(flushProbabilityZipf(2, n), 0.01, 0.005);
    EXPECT_NEAR(flushProbabilityZipf(3, n), 0.03, 0.012);
    EXPECT_NEAR(flushProbabilityZipf(4, n), 0.06, 0.02);
    EXPECT_NEAR(flushProbabilityZipf(5, n), 0.10, 0.035);
}

TEST(FlushModel, ZipfMonotonicInWindow)
{
    for (double l = 2; l < 10; ++l)
        EXPECT_GT(flushProbabilityZipf(l + 1, 50000),
                  flushProbabilityZipf(l, 50000));
}

TEST(FlushModel, ThroughputEquation)
{
    // Equation 2: T_p = T / ((1-P) + K P).
    EXPECT_DOUBLE_EQ(pipelineThroughputMpps(250, 0.0, 100), 250.0);
    EXPECT_NEAR(pipelineThroughputMpps(250, 0.01, 45),
                250.0 / (0.99 + 0.45), 1e-9);
    // Degenerate all-flush case: T / K.
    EXPECT_NEAR(pipelineThroughputMpps(250, 1.0, 50), 5.0, 1e-9);
}

TEST(FlushModel, KmaxInvertsEquation)
{
    // Equation 3 is the inverse of equation 2 at the target throughput.
    const double pf = 0.03;
    const double kmax = maxFlushableStages(250, 148, pf);
    EXPECT_NEAR(pipelineThroughputMpps(250, pf, kmax), 148.0, 1e-6);
}

TEST(FlushModel, Table4KmaxValues)
{
    // Table 4: K_max sustaining 148 Mpps: L=2 -> 61, L=3 -> 21,
    // L=4 -> 11, L=5 -> 7.
    const uint64_t n = 50000;
    const double t = 250.0, target = 148.0;
    EXPECT_NEAR(maxFlushableStages(t, target,
                                   flushProbabilityZipf(2, n)), 61, 25);
    EXPECT_NEAR(maxFlushableStages(t, target,
                                   flushProbabilityZipf(3, n)), 21, 9);
    EXPECT_NEAR(maxFlushableStages(t, target,
                                   flushProbabilityZipf(4, n)), 11, 5);
    EXPECT_NEAR(maxFlushableStages(t, target,
                                   flushProbabilityZipf(5, n)), 7, 3);
}

TEST(FlushModel, NoFlushMeansUnboundedK)
{
    EXPECT_GT(maxFlushableStages(250, 148, 0.0), 1e6);
}

TEST(FlushModel, GeometryOfLeakyBucket)
{
    const Pipeline pipe = compile(apps::makeLeakyBucket().prog);
    const HazardGeometry geo = hazardGeometry(pipe);
    EXPECT_TRUE(geo.hasFlush);
    EXPECT_GT(geo.k, kFlushReloadCycles);
    EXPECT_GE(geo.l, 1.0);
    EXPECT_LE(geo.l, pipe.numStages());
}

TEST(FlushModel, GeometryOfAtomicOnlyApps)
{
    // Router/tunnel counters use the atomic primitive: no flush blocks.
    const HazardGeometry geo =
        hazardGeometry(compile(apps::makeRouterIpv4().prog));
    EXPECT_FALSE(geo.hasFlush);
    EXPECT_EQ(geo.k, 0.0);
}

TEST(FlushModel, ThroughputPredictionForLeakyBucket)
{
    // Table 3 reports 52 Mpps for leaky_bucket at 50k Zipfian flows with
    // K=39, L=5. Our pipeline differs in exact geometry; check the model
    // produces a throughput of that order for our K and L.
    const Pipeline pipe = compile(apps::makeLeakyBucket().prog);
    const HazardGeometry geo = hazardGeometry(pipe);
    const double pf = flushProbabilityZipf(geo.l + 1, 50000);
    const double tp = pipelineThroughputMpps(250.0, pf, geo.k);
    EXPECT_GT(tp, 5.0);
    EXPECT_LE(tp, 250.0);
}

}  // namespace
}  // namespace ehdl::hdl
