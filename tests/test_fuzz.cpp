/**
 * @file
 * Differential-fuzzing subsystem tests: generator determinism and
 * verifier acceptance, case-file round-trips, shrinker mutations (jump
 * re-targeting across deletions), clean campaigns against the fixed
 * pipeline, and fault-injected campaigns that must find and shrink the
 * planted hazard bugs.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "ebpf/codec.hpp"
#include "ebpf/mutate.hpp"
#include "ebpf/verifier.hpp"
#include "fuzz/case.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/gen.hpp"
#include "fuzz/shrink.hpp"

namespace ehdl::fuzz {
namespace {

TEST(FuzzGen, DeterministicForSeed)
{
    for (uint64_t seed : {1ull, 17ull, 123456789ull}) {
        const ebpf::Program a = generateProgram(seed);
        const ebpf::Program b = generateProgram(seed);
        ASSERT_EQ(a.insns.size(), b.insns.size());
        EXPECT_EQ(ebpf::encode(a.insns), ebpf::encode(b.insns));
        ASSERT_EQ(a.maps.size(), b.maps.size());
        for (size_t i = 0; i < a.maps.size(); ++i) {
            EXPECT_EQ(a.maps[i].kind, b.maps[i].kind);
            EXPECT_EQ(a.maps[i].maxEntries, b.maps[i].maxEntries);
        }
    }
}

TEST(FuzzGen, SeedsDiverge)
{
    // Not a hard guarantee per pair, but over a few seeds the streams
    // must not all collapse to one template instantiation.
    const std::vector<uint8_t> first =
        ebpf::encode(generateProgram(1).insns);
    bool any_different = false;
    for (uint64_t seed = 2; seed <= 6; ++seed)
        any_different |=
            ebpf::encode(generateProgram(seed).insns) != first;
    EXPECT_TRUE(any_different);
}

TEST(FuzzGen, EveryProgramVerifies)
{
    // generateProgram panics internally on verifier rejection; this sweep
    // both exercises that assertion and re-checks from the outside.
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        const ebpf::Program prog = generateProgram(seed);
        EXPECT_TRUE(ebpf::verify(prog).ok) << "seed " << seed;
        EXPECT_GT(prog.insns.size(), 5u);
    }
}

TEST(FuzzGen, CodecRoundTripsGeneratedPrograms)
{
    // Randomized encode->decode round-trip: generated programs cover
    // lddw map loads, calls, branches and atomics in one stream.
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        const ebpf::Program prog = generateProgram(seed);
        const std::vector<uint8_t> wire = ebpf::encode(prog.insns);
        EXPECT_EQ(ebpf::encode(ebpf::decode(wire)), wire)
            << "seed " << seed;
    }
}

TEST(FuzzCaseFormat, RoundTrip)
{
    FuzzCase c = makeCase(3, 7, FuzzOptions{});
    c.expectDivergence = true;
    c.options.unsafeDisableWarBuffers = true;
    const std::string text = serializeCase(c);
    const FuzzCase back = parseCase(text);

    EXPECT_EQ(back.name, c.name);
    EXPECT_EQ(back.programSeed, c.programSeed);
    EXPECT_EQ(back.trafficSeed, c.trafficSeed);
    EXPECT_EQ(back.expectDivergence, c.expectDivergence);
    EXPECT_EQ(back.options.unsafeDisableWarBuffers,
              c.options.unsafeDisableWarBuffers);
    EXPECT_EQ(back.options.unsafeDisableFlushBlocks,
              c.options.unsafeDisableFlushBlocks);
    EXPECT_EQ(ebpf::encode(back.prog.insns), ebpf::encode(c.prog.insns));
    ASSERT_EQ(back.prog.maps.size(), c.prog.maps.size());
    for (size_t i = 0; i < c.prog.maps.size(); ++i) {
        EXPECT_EQ(back.prog.maps[i].kind, c.prog.maps[i].kind);
        EXPECT_EQ(back.prog.maps[i].keySize, c.prog.maps[i].keySize);
        EXPECT_EQ(back.prog.maps[i].valueSize, c.prog.maps[i].valueSize);
        EXPECT_EQ(back.prog.maps[i].maxEntries, c.prog.maps[i].maxEntries);
    }
    EXPECT_EQ(back.packets, c.packets);

    // Serialization is itself deterministic (stable corpus diffs).
    EXPECT_EQ(serializeCase(back), text);
}

TEST(FuzzCaseFormat, RejectsMalformedInput)
{
    EXPECT_THROW(parseCase("format 999\nend\n"), FatalError);
    EXPECT_THROW(parseCase("# missing format line\nend\n"), FatalError);
    FuzzCase c = makeCase(3, 7, FuzzOptions{});
    std::string text = serializeCase(c);
    text.replace(text.find("insn "), 6, "insn zz");
    EXPECT_THROW(parseCase(text), FatalError);
}

TEST(FuzzMutate, RemoveInsnRetargetsJumps)
{
    // 0: r0 = 0 / 1: if r0 == 0 goto +2 / 2: r0 += 1 / 3: r0 += 2 /
    // 4: exit   — removing insn 2 must shrink the branch offset to +1.
    ebpf::Program prog;
    prog.name = "jmpfix";
    prog.insns.push_back(ebpf::Insn{0xb7, 0, 0, 0, 0});       // mov r0,0
    prog.insns.push_back(ebpf::Insn{0x15, 0, 0, 2, 0});       // jeq +2
    prog.insns.push_back(ebpf::Insn{0x07, 0, 0, 0, 1});       // r0 += 1
    prog.insns.push_back(ebpf::Insn{0x07, 0, 0, 0, 2});       // r0 += 2
    prog.insns.push_back(ebpf::Insn{0x95, 0, 0, 0, 0});       // exit

    const auto mutant = ebpf::removeInsn(prog, 2);
    ASSERT_TRUE(mutant.has_value());
    ASSERT_EQ(mutant->insns.size(), 4u);
    EXPECT_EQ(mutant->insns[1].off, 1);  // jump now lands on old insn 3
    EXPECT_TRUE(ebpf::verify(*mutant).ok);
}

TEST(FuzzMutate, ConstantizeRefusesNonDefs)
{
    ebpf::Program prog;
    prog.insns.push_back(ebpf::Insn{0xb7, 3, 0, 0, 7});       // mov r3,7
    prog.insns.push_back(ebpf::Insn{0x95, 0, 0, 0, 0});       // exit
    EXPECT_TRUE(ebpf::constantizeInsn(prog, 0, 1).has_value());
    EXPECT_FALSE(ebpf::constantizeInsn(prog, 1, 1).has_value());
}

TEST(FuzzCampaign, MakeCaseIsDeterministic)
{
    FuzzOptions opts;
    opts.seed = 9;
    const FuzzCase a = makeCase(opts.seed, 4, opts);
    const FuzzCase b = makeCase(opts.seed, 4, opts);
    EXPECT_EQ(ebpf::encode(a.prog.insns), ebpf::encode(b.prog.insns));
    EXPECT_EQ(a.packets, b.packets);
    const FuzzCase other = makeCase(opts.seed, 5, opts);
    EXPECT_NE(a.packets, other.packets);
}

TEST(FuzzCampaign, CleanPipelineShowsNoDivergence)
{
    FuzzOptions opts;
    opts.seed = 5;
    opts.iterations = 40;
    opts.maxPackets = 48;
    const FuzzStats stats = runFuzz(opts);
    EXPECT_EQ(stats.divergences, 0u);
    EXPECT_GT(stats.compiled, 0u);
    EXPECT_EQ(stats.iterations, 40u);
}

TEST(FuzzCampaign, FindsAndShrinksInjectedWarBug)
{
    FuzzOptions opts;
    opts.seed = 1;
    opts.iterations = 10000;  // stops at the first divergence
    opts.injectWarBug = true;
    const FuzzStats stats = runFuzz(opts);
    ASSERT_EQ(stats.divergences, 1u);
    const DivergenceRecord &rec = stats.records[0];
    EXPECT_LE(rec.shrunk.prog.insns.size(), 16u);
    EXPECT_LE(rec.shrunk.packets.size(), 8u);
    // The shrunk case must still reproduce on a fresh run.
    const CaseResult replay = runCase(rec.shrunk);
    EXPECT_TRUE(replay.diverged());
}

TEST(FuzzCampaign, FindsInjectedFlushBug)
{
    FuzzOptions opts;
    opts.seed = 1;
    opts.iterations = 10000;
    opts.injectFlushBug = true;
    opts.shrink = false;
    const FuzzStats stats = runFuzz(opts);
    ASSERT_EQ(stats.divergences, 1u);
    EXPECT_TRUE(runCase(stats.records[0].original).diverged());
}

TEST(FuzzShrink, PanicsOnAgreeingCase)
{
    const FuzzCase c = makeCase(5, 1, FuzzOptions{});
    if (runCase(c).diverged())
        GTEST_SKIP() << "seed unexpectedly diverges";
    EXPECT_THROW(shrinkCase(c, ShrinkOptions{}), PanicError);
}

}  // namespace
}  // namespace ehdl::fuzz
