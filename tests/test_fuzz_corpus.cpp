/**
 * @file
 * Corpus regression replay: every checked-in `tests/corpus/*.ehdlcase`
 * runs through the differential executor and must reproduce its recorded
 * expectation — fault-injected cases keep diverging, fixed-bug regression
 * cases keep agreeing — and must do so deterministically across runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fuzz/case.hpp"
#include "fuzz/diff.hpp"

#ifndef EHDL_CORPUS_DIR
#error "EHDL_CORPUS_DIR must point at tests/corpus"
#endif

namespace ehdl::fuzz {
namespace {

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(EHDL_CORPUS_DIR))
        if (entry.path().extension() == ".ehdlcase")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

std::string
outcomeKey(const CaseResult &r)
{
    if (r.diverged())
        return "divergence: " + r.divergence->describe();
    return r.compiled ? "agreement" : "rejected: " + r.rejectReason;
}

TEST(FuzzCorpus, HasCases)
{
    // Both contract flavours must be represented: fault-injected cases
    // that diverge and fixed-bug regression cases that agree.
    size_t expect_diverge = 0, expect_agree = 0;
    for (const std::string &path : corpusFiles())
        (loadCase(path).expectDivergence ? expect_diverge : expect_agree)++;
    EXPECT_GE(expect_diverge, 1u);
    EXPECT_GE(expect_agree, 1u);
}

TEST(FuzzCorpus, ReplayMatchesExpectation)
{
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        const FuzzCase c = loadCase(path);
        const CaseResult r = runCase(c);
        EXPECT_EQ(r.diverged(), c.expectDivergence) << outcomeKey(r);
    }
}

TEST(FuzzCorpus, ReplayMatchesExpectationUnderAot)
{
    // The differential contract is engine-independent: replaying the
    // corpus with the pipeline backends on the AOT engine must reproduce
    // every recorded expectation — fault-injected cases still diverge
    // (the specializer faithfully reproduces the injected bug's
    // behaviour), regression cases still agree.
    RunOptions opts;
    opts.engine = sim::SimEngine::Aot;
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        const FuzzCase c = loadCase(path);
        const CaseResult r = runCase(c, opts);
        EXPECT_EQ(r.diverged(), c.expectDivergence) << outcomeKey(r);
    }
}

TEST(FuzzCorpus, ReplayIsDeterministic)
{
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        const FuzzCase c = loadCase(path);
        EXPECT_EQ(outcomeKey(runCase(c)), outcomeKey(runCase(c)));
    }
}

TEST(FuzzCorpus, FilesRoundTripVerbatim)
{
    // Stored corpus files are canonical: re-serializing the parsed case
    // reproduces the file byte-for-byte (stable diffs, stable replays).
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        std::ifstream in(path, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(serializeCase(parseCase(text)), text);
    }
}

}  // namespace
}  // namespace ehdl::fuzz
