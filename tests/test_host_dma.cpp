/**
 * @file
 * Host DMA datapath tests: queue mechanics (FIFO backpressure, DMA
 * batching, coalescing triggers, TX re-emit, descriptor conservation),
 * the observer contract (attaching the host model never perturbs the
 * pipeline, and host counters are bit-identical across every engine and
 * scheduling mode), deterministic backpressure drops on small rings,
 * multi-replica attachment in sharded/shared/threaded modes, traffic-mix
 * coverage (uniform/Zipf/churn), and the stats_stream schedule verb.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ctl/controller.hpp"
#include "hdl/compiler.hpp"
#include "host/host_dma.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl::host {
namespace {

using apps::AppSpec;
using ebpf::MapSet;
using ebpf::XdpAction;
using sim::MapMode;
using sim::MultiPipeSim;
using sim::MultiPipeSimConfig;
using sim::PacketOutcome;
using sim::PipeSim;
using sim::PipeSimConfig;

/** A PASS retirement of @p len payload bytes (for direct queue feeding). */
PacketOutcome
passOutcome(uint64_t id, size_t len = 64)
{
    PacketOutcome out;
    out.id = id;
    out.action = XdpAction::Pass;
    out.bytes.assign(len, 0);
    return out;
}

/** The six contracted engine x sched combinations. */
struct EngineCombo
{
    const char *engine;
    sim::SchedMode sched;
};

const EngineCombo kCombos[] = {
    {"interp", sim::SchedMode::Dense},
    {"interp", sim::SchedMode::EventDriven},
    {"aot", sim::SchedMode::Dense},
    {"aot", sim::SchedMode::EventDriven},
    {"aot-native", sim::SchedMode::Dense},
    {"aot-native", sim::SchedMode::EventDriven},
};

/** PASS-heavy firewall traffic: tagged flows flip to TCP, which the
 *  simple firewall passes, so hostFlowFraction controls the PASS share. */
sim::TrafficConfig
hostTraffic(double host_fraction, double zipf_s = 0.0,
            uint64_t churn_period = 0)
{
    sim::TrafficConfig tc;
    tc.numFlows = 64;
    tc.seed = 11;
    tc.zipfS = zipf_s;
    tc.churnPeriod = churn_period;
    tc.ipProto = net::kIpProtoUdp;
    tc.hostFlowFraction = host_fraction;
    return tc;
}

std::vector<net::Packet>
makeTrace(const sim::TrafficConfig &tc, int num_packets)
{
    sim::TrafficGen gen(tc);
    std::vector<net::Packet> packets;
    packets.reserve(static_cast<size_t>(num_packets));
    for (int i = 0; i < num_packets; ++i)
        packets.push_back(gen.next());
    return packets;
}

/** Run @p packets through the firewall under one engine/sched combo with
 *  a host datapath attached; returns (pipe stats, host counters). */
struct SingleRun
{
    sim::PipeSimStats stats;
    HostQueueCounters host;
};

SingleRun
runSingle(const std::vector<net::Packet> &packets, const EngineCombo &combo,
          const HostDmaConfig &hc)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);

    PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    EXPECT_TRUE(sim::parseEngineSpec(combo.engine, sc));
    sc.schedMode = combo.sched;

    PipeSim sim(pipe, maps, sc);
    HostDatapath host(hc);
    host.attach(sim);
    for (const net::Packet &pkt : packets)
        sim.offer(pkt);
    sim.drain();
    host.finishAll();
    return {sim.stats(), host.queue(0).counters()};
}

// --- Queue mechanics --------------------------------------------------

TEST(HostQueue, PassOnlyEntersTheRxPath)
{
    HostDmaConfig hc;
    HostQueue q(hc, 0);
    PacketOutcome drop = passOutcome(1);
    drop.action = XdpAction::Drop;
    q.onRetire(10, drop);
    PacketOutcome tx = passOutcome(2);
    tx.action = XdpAction::Tx;
    q.onRetire(20, tx);
    q.onRetire(30, passOutcome(3, 100));
    q.finish();
    EXPECT_EQ(q.counters().enqueued, 1u);
    EXPECT_EQ(q.counters().consumed, 1u);
    EXPECT_EQ(q.counters().consumedBytes, 100u);
    EXPECT_EQ(q.counters().shellDrops, 0u);
}

TEST(HostQueue, FullFifoDropsUnderTheDistinctCounter)
{
    HostDmaConfig hc;
    hc.shellFifoDepth = 4;
    hc.ringDepth = 4;
    // A host so slow nothing drains while retirements arrive.
    hc.hostRateMpps = 0.001;
    HostQueue q(hc, 0);
    // Back-to-back retirements at one cycle: the FIFO (4) plus the ring
    // and DMA pipeline absorb a few, the rest are shell drops.
    for (uint64_t i = 0; i < 64; ++i)
        q.onRetire(100, passOutcome(i));
    EXPECT_GT(q.counters().shellDrops, 0u);
    q.finish();
    const HostQueueCounters &c = q.counters();
    EXPECT_EQ(c.enqueued, 64u);
    EXPECT_EQ(c.consumed + c.shellDrops, c.enqueued);
    EXPECT_EQ(c.fifoOccupancy, 0u);
    EXPECT_EQ(c.ringOccupancy, 0u);
}

TEST(HostQueue, CoalescingCountAndTimerTriggers)
{
    HostDmaConfig hc;
    hc.batchSize = 4;
    hc.coalesceCount = 4;
    hc.coalesceTimeoutCycles = 50;
    HostQueue count_q(hc, 0);
    // A full batch lands at once: the count threshold fires the IRQ.
    for (uint64_t i = 0; i < 4; ++i)
        count_q.onRetire(0, passOutcome(i));
    count_q.finish();
    EXPECT_EQ(count_q.counters().countTriggeredIrqs, 1u);
    EXPECT_EQ(count_q.counters().timerTriggeredIrqs, 0u);

    // A single descriptor can only IRQ via the coalescing timer.
    HostQueue timer_q(hc, 0);
    timer_q.onRetire(0, passOutcome(0));
    timer_q.finish();
    EXPECT_EQ(timer_q.counters().countTriggeredIrqs, 0u);
    EXPECT_EQ(timer_q.counters().timerTriggeredIrqs, 1u);
    EXPECT_EQ(timer_q.counters().interrupts, 1u);
}

TEST(HostQueue, DmaBatchesDescriptors)
{
    HostDmaConfig hc;
    hc.batchSize = 8;
    HostQueue q(hc, 0);
    for (uint64_t i = 0; i < 8; ++i)
        q.onRetire(0, passOutcome(i, 128));
    q.finish();
    const HostQueueCounters &c = q.counters();
    EXPECT_EQ(c.dmaDescriptors, 8u);
    EXPECT_EQ(c.dmaBytes, 8u * 128u);
    // The DMA engine issues eagerly: the first descriptor goes out
    // alone on the idle link, the other seven batch up behind it while
    // the link is busy — two bursts, not eight.
    EXPECT_EQ(c.dmaBursts, 2u);
}

TEST(HostQueue, TxReinjectEmitsTheConfiguredFraction)
{
    HostDmaConfig hc;
    hc.txReinjectFraction = 0.5;
    HostQueue q(hc, 0);
    for (uint64_t i = 0; i < 100; ++i)
        q.onRetire(i * 10, passOutcome(i));
    q.finish();
    const HostQueueCounters &c = q.counters();
    EXPECT_EQ(c.consumed, 100u);
    EXPECT_EQ(c.txInjected, 50u);  // Bresenham: exactly 1 in 2
    EXPECT_EQ(c.txEmitted, c.txInjected);
    EXPECT_EQ(c.txRingDrops, 0u);
}

TEST(HostDatapath, RejectsInvalidConfigs)
{
    HostDmaConfig zero_queues;
    zero_queues.numQueues = 0;
    EXPECT_THROW(HostDatapath{zero_queues}, FatalError);
    HostDmaConfig zero_ring;
    zero_ring.ringDepth = 0;
    EXPECT_THROW(HostDatapath{zero_ring}, FatalError);
    HostDmaConfig bad_rate;
    bad_rate.hostRateMpps = 0.0;
    EXPECT_THROW(HostDatapath{bad_rate}, FatalError);
}

// --- The observer contract --------------------------------------------

/**
 * Deep rings, fast host: attaching the host datapath must not change a
 * single contracted pipeline counter, and the host-side counters must be
 * bit-identical across all six engine x sched combinations.
 */
TEST(HostContract, BitIdenticalAcrossEnginesAndScheds)
{
    const auto packets = makeTrace(hostTraffic(0.5), 3000);
    HostDmaConfig hc;
    hc.ringDepth = 1024;
    hc.shellFifoDepth = 256;
    hc.hostRateMpps = 100.0;
    hc.txReinjectFraction = 0.25;

    // Baseline: no host model, interp/dense.
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    PipeSim bare(pipe, maps, sc);
    for (const net::Packet &pkt : packets)
        bare.offer(pkt);
    bare.drain();
    const sim::PipeSimStats base = bare.stats();
    ASSERT_GT(base.passPackets, 0u);

    const SingleRun first = runSingle(packets, kCombos[0], hc);
    for (const EngineCombo &combo : kCombos) {
        SCOPED_TRACE(std::string(combo.engine) + "/" +
                     (combo.sched == sim::SchedMode::Dense ? "dense"
                                                           : "event"));
        const SingleRun run = runSingle(packets, combo, hc);
        // The pipeline never felt the host model.
        EXPECT_EQ(run.stats.cycles, base.cycles);
        EXPECT_EQ(run.stats.completed, base.completed);
        EXPECT_EQ(run.stats.flushEvents, base.flushEvents);
        EXPECT_EQ(run.stats.stallCycles, base.stallCycles);
        EXPECT_EQ(run.stats.passPackets, base.passPackets);
        EXPECT_EQ(run.stats.dropPackets, base.dropPackets);
        // The host counters are one bit pattern across all combos.
        EXPECT_EQ(run.host, first.host);
        // Deep ring + fast host: nothing dropped, everything conserved.
        EXPECT_EQ(run.host.shellDrops, 0u);
        EXPECT_EQ(run.host.enqueued, base.passPackets);
        EXPECT_EQ(run.host.consumed, base.passPackets);
    }
}

/**
 * Small rings, slow host: backpressure must surface as shell drops under
 * the distinct counter — deterministically, the same count everywhere.
 */
TEST(HostContract, SmallRingBackpressureIsDeterministic)
{
    const auto packets = makeTrace(hostTraffic(0.7), 3000);
    HostDmaConfig hc;
    hc.ringDepth = 8;
    hc.shellFifoDepth = 8;
    hc.batchSize = 4;
    hc.hostRateMpps = 0.05;

    const SingleRun first = runSingle(packets, kCombos[0], hc);
    ASSERT_GT(first.host.shellDrops, 0u);
    EXPECT_EQ(first.host.consumed + first.host.shellDrops,
              first.host.enqueued);
    EXPECT_EQ(first.host.enqueued, first.stats.passPackets);
    for (const EngineCombo &combo : kCombos) {
        SCOPED_TRACE(std::string(combo.engine) + "/" +
                     (combo.sched == sim::SchedMode::Dense ? "dense"
                                                           : "event"));
        EXPECT_EQ(runSingle(packets, combo, hc).host, first.host);
    }
}

/** Uniform, Zipf-skewed and churning traffic all hold the contract. */
TEST(HostContract, TrafficMixes)
{
    const struct
    {
        const char *name;
        double zipfS;
        uint64_t churn;
    } mixes[] = {
        {"uniform", 0.0, 0},
        {"zipf", 1.1, 0},
        {"churn", 0.0, 500},
    };
    HostDmaConfig hc;
    hc.ringDepth = 32;
    hc.hostRateMpps = 1.0;
    for (const auto &mix : mixes) {
        SCOPED_TRACE(mix.name);
        const auto packets =
            makeTrace(hostTraffic(0.4, mix.zipfS, mix.churn), 2000);
        const SingleRun interp_dense =
            runSingle(packets, {"interp", sim::SchedMode::Dense}, hc);
        const SingleRun aot_event =
            runSingle(packets, {"aot", sim::SchedMode::EventDriven}, hc);
        EXPECT_EQ(interp_dense.host, aot_event.host);
        EXPECT_GT(interp_dense.host.enqueued, 0u);
        EXPECT_EQ(interp_dense.host.consumed + interp_dense.host.shellDrops,
                  interp_dense.host.enqueued);
    }
}

/** hostFlowFraction actually shifts the verdict mix toward PASS. */
TEST(HostTraffic, FractionControlsPassShare)
{
    const auto forward = makeTrace(hostTraffic(0.0), 1000);
    const auto host_heavy = makeTrace(hostTraffic(0.8), 1000);
    HostDmaConfig hc;
    const sim::PipeSimStats fwd =
        runSingle(forward, kCombos[0], hc).stats;
    const sim::PipeSimStats heavy =
        runSingle(host_heavy, kCombos[0], hc).stats;
    EXPECT_GT(heavy.passPackets, fwd.passPackets);
    EXPECT_GT(heavy.passPackets, 500u);
}

// --- Multi-replica attachment -----------------------------------------

MultiPipeSimConfig
multiConfig(unsigned replicas, MapMode mode, bool threaded)
{
    MultiPipeSimConfig mc;
    mc.numReplicas = replicas;
    mc.mapMode = mode;
    mc.threaded = threaded;
    mc.pipe.inputQueueCapacity = 1u << 20;
    return mc;
}

/** 4-replica run: queue r serves replica r, totals identical across
 *  sharded-lockstep, sharded-threaded and shared-lockstep modes. */
TEST(HostMulti, ShardedSharedThreadedAgree)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const auto packets = makeTrace(hostTraffic(0.5), 3000);

    HostDmaConfig hc;
    hc.numQueues = 4;
    hc.ringDepth = 16;
    hc.hostRateMpps = 0.5;

    auto run = [&](MapMode mode, bool threaded) {
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        MultiPipeSim multi(pipe, maps, multiConfig(4, mode, threaded));
        HostDatapath host(hc);
        host.attach(multi);
        for (const net::Packet &pkt : packets)
            multi.offer(pkt);
        multi.drain();
        host.finishAll();
        std::vector<HostQueueCounters> per_queue;
        for (unsigned q = 0; q < 4; ++q) {
            per_queue.push_back(host.queue(q).counters());
            EXPECT_EQ(per_queue.back().enqueued,
                      multi.replica(q).stats().passPackets);
            EXPECT_EQ(per_queue.back().consumed +
                          per_queue.back().shellDrops,
                      per_queue.back().enqueued);
        }
        return per_queue;
    };

    const auto sharded = run(MapMode::Sharded, false);
    const auto threaded = run(MapMode::Sharded, true);
    const auto shared = run(MapMode::Shared, false);
    for (unsigned q = 0; q < 4; ++q) {
        SCOPED_TRACE("queue " + std::to_string(q));
        EXPECT_EQ(sharded[q], threaded[q]);
        EXPECT_EQ(sharded[q], shared[q]);
    }
    // RSS spread the host-destined flows across queues.
    unsigned active = 0;
    for (const HostQueueCounters &c : sharded)
        active += c.enqueued > 0 ? 1 : 0;
    EXPECT_GE(active, 2u);
}

TEST(HostMulti, RejectsFewerQueuesThanReplicas)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    MultiPipeSim multi(pipe, maps,
                       multiConfig(4, MapMode::Sharded, false));
    HostDmaConfig hc;
    hc.numQueues = 2;
    HostDatapath host(hc);
    EXPECT_THROW(host.attach(multi), FatalError);
}

// --- stats_stream schedule verb ---------------------------------------

TEST(StatsStream, ScheduleRoundTrip)
{
    ctl::CtlSchedule sched;
    ctl::CtlTxn txn;
    txn.cycle = 350;
    txn.kind = ctl::CtlOpKind::StatsStream;
    txn.streamPeriod = 500;
    txn.streamCount = 8;
    sched.txns.push_back(txn);

    const std::string text = ctl::serializeSchedule(sched);
    EXPECT_NE(text.find("stream 500 8"), std::string::npos);
    const ctl::CtlSchedule parsed = ctl::parseSchedule(text);
    ASSERT_EQ(parsed.txns.size(), 1u);
    EXPECT_EQ(parsed.txns[0].kind, ctl::CtlOpKind::StatsStream);
    EXPECT_EQ(parsed.txns[0].cycle, 350u);
    EXPECT_EQ(parsed.txns[0].streamPeriod, 500u);
    EXPECT_EQ(parsed.txns[0].streamCount, 8u);

    EXPECT_THROW(ctl::parseSchedule("@10 stream 0 4"), FatalError);
    EXPECT_THROW(ctl::parseSchedule("@10 stream 100 0"), FatalError);
}

/** A stream transaction samples the attached host queue's counters. */
TEST(StatsStream, SamplesHostCounters)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    const auto packets = makeTrace(hostTraffic(0.5), 2000);

    PipeSimConfig sc;
    sc.inputQueueCapacity = 1u << 20;
    PipeSim sim(pipe, maps, sc);
    HostDmaConfig hc;
    hc.ringDepth = 32;
    hc.hostRateMpps = 1.0;
    HostDatapath host(hc);
    host.attach(sim);
    for (const net::Packet &pkt : packets)
        sim.offer(pkt);

    ctl::CtlController ctrl(sim, maps);
    ctrl.attachHost(&host);
    const ctl::CtlRunReport report =
        ctrl.run(ctl::parseSchedule("@100 stream 400 6"));
    sim.drain();
    host.finishAll();

    ASSERT_EQ(report.txns.size(), 1u);
    const ctl::CtlTxnRecord &rec = report.txns[0];
    ASSERT_EQ(rec.streamSamples.size(), 1u);
    const auto &series = rec.streamSamples[0];
    ASSERT_EQ(series.size(), 6u);
    for (size_t i = 0; i < series.size(); ++i) {
        ASSERT_TRUE(series[i].hostValid);
        EXPECT_EQ(series[i].cycle, rec.deviceCycle + i * 400);
        if (i > 0) {
            // Counters are monotone along the series.
            EXPECT_GE(series[i].host.enqueued, series[i - 1].host.enqueued);
            EXPECT_GE(series[i].host.consumed, series[i - 1].host.consumed);
            EXPECT_GE(series[i].stats.completed,
                      series[i - 1].stats.completed);
        }
    }
    // The mailbox stays busy while the device streams.
    EXPECT_GE(rec.completeCycle, rec.deviceCycle + 5 * 400);
    // The series never exceeds the final totals.
    EXPECT_LE(series.back().host.consumed, host.queue(0).counters().consumed);
}

}  // namespace
}  // namespace ehdl::host
