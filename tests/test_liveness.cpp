/**
 * @file
 * Liveness/pruning soundness: state pruning (paper section 4.3) may only
 * drop state no stage still needs. For every application and a sweep of
 * random programs, every register and stack byte an op reads must be in
 * its stage's live-in set — otherwise the generated hardware would have
 * pruned a wire the datapath still uses.
 */

#include <gtest/gtest.h>

#include "analysis/effects.hpp"
#include "apps/apps.hpp"
#include "common/rng.hpp"
#include "ebpf/builder.hpp"
#include "hdl/compiler.hpp"

namespace ehdl::hdl {
namespace {

/** Check the pruned live sets against every op's actual uses. */
void
expectLivenessCoversUses(const Pipeline &pipe)
{
    for (size_t s = 0; s < pipe.numStages(); ++s) {
        const Stage &stage = pipe.stages[s];
        // Uses within a row may be satisfied by earlier ops in the same
        // row (fused pairs); track defs as we walk.
        uint16_t defined_in_row = 0;
        for (const StageOp &op : stage.ops) {
            for (size_t pc : op.pcs) {
                const analysis::Effects fx =
                    analysis::insnEffects(pipe.prog, pc, pipe.analysis);
                const uint16_t missing = fx.regUses &
                                         ~(stage.liveRegs |
                                           defined_in_row);
                EXPECT_EQ(missing, 0)
                    << pipe.prog.name << " stage " << s << " insn " << pc
                    << ": uses pruned register(s) mask 0x" << std::hex
                    << missing;
                defined_in_row |= fx.regDefs;

                if (fx.stack.reads && !fx.isExit) {
                    ASSERT_TRUE(fx.stack.known)
                        << pipe.prog.name << " insn " << pc;
                    for (int64_t b = fx.stack.off;
                         b < fx.stack.off + fx.stack.len; ++b) {
                        EXPECT_TRUE(stage.liveStack.test(
                            static_cast<size_t>(b)))
                            << pipe.prog.name << " stage " << s
                            << " insn " << pc << " stack byte " << b;
                    }
                }
            }
        }
    }
}

TEST(LivenessSoundness, AllApplications)
{
    std::vector<apps::AppSpec> all = apps::paperApps();
    all.push_back(apps::makeToyCounter());
    all.push_back(apps::makeLeakyBucket());
    all.push_back(apps::makeElasticDemo());
    all.push_back(apps::makeMonitorSampler());
    for (const apps::AppSpec &spec : all) {
        SCOPED_TRACE(spec.prog.name);
        expectLivenessCoversUses(compile(spec.prog));
    }
}

class LivenessFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LivenessFuzzTest, RandomProgramsNeverReadPrunedState)
{
    Rng rng(GetParam() * 1009 + 13);
    ebpf::ProgramBuilder b("lfuzz");
    for (unsigned r = 1; r <= 9; ++r)
        b.mov(r, static_cast<int32_t>(rng.next()));
    for (unsigned s = 1; s <= 6; ++s)
        b.stx(ebpf::MemSize::DW, 10, -8 * static_cast<int16_t>(s), 1);
    const unsigned n = 10 + rng.below(30);
    unsigned labels = 0;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned dst = 1 + rng.below(9);
        switch (rng.below(6)) {
          case 0: b.aluReg(ebpf::AluOp::Add, dst, 1 + rng.below(9)); break;
          case 1: b.mov(dst, static_cast<int32_t>(rng.next())); break;
          case 2: b.ldx(ebpf::MemSize::DW, dst, 10,
                        -8 * static_cast<int16_t>(1 + rng.below(6)));
            break;
          case 3: b.stx(ebpf::MemSize::DW, 10,
                        -8 * static_cast<int16_t>(1 + rng.below(6)), dst);
            break;
          case 4: b.alu32(ebpf::AluOp::Xor, dst,
                          static_cast<int32_t>(rng.next()));
            break;
          case 5: {
            const std::string label = "l" + std::to_string(labels++);
            b.jcond(ebpf::JmpOp::Jgt, dst,
                    static_cast<int64_t>(rng.below(100)), label);
            b.aluReg(ebpf::AluOp::Sub, 1 + rng.below(9),
                     1 + rng.below(9));
            b.label(label);
            break;
          }
        }
    }
    b.mov(0, 2);
    b.exit();
    expectLivenessCoversUses(compile(b.build()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivenessFuzzTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace ehdl::hdl
