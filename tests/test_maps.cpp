/**
 * @file
 * Map substrate tests: array/hash/LRU/LPM semantics, the stable-entry
 * contract behind tagged map-value pointers, the host (userspace) API of
 * paper section 6, and MapSet snapshots/equality.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ebpf/maps.hpp"

namespace ehdl::ebpf {
namespace {

std::vector<uint8_t>
key32(uint32_t v)
{
    std::vector<uint8_t> k(4);
    storeLe<uint32_t>(k.data(), v);
    return k;
}

std::vector<uint8_t>
val64(uint64_t v)
{
    std::vector<uint8_t> out(8);
    storeLe<uint64_t>(out.data(), v);
    return out;
}

TEST(ArrayMap, EntriesPreExistZeroed)
{
    ArrayMap map({"a", MapKind::Array, 4, 8, 4});
    for (uint32_t i = 0; i < 4; ++i) {
        const int64_t e = map.lookup(key32(i).data());
        ASSERT_EQ(e, i);
        EXPECT_EQ(loadLe<uint64_t>(map.valueAt(e)), 0u);
    }
    EXPECT_EQ(map.lookup(key32(4).data()), -1);
    EXPECT_EQ(map.count(), 4u);
}

TEST(ArrayMap, UpdateAndDeleteSemantics)
{
    ArrayMap map({"a", MapKind::Array, 4, 8, 4});
    EXPECT_EQ(map.update(key32(2).data(), val64(99).data(), kBpfAny), 0);
    EXPECT_EQ(loadLe<uint64_t>(map.valueAt(2)), 99u);
    // Arrays reject NOEXIST (entries always exist) and deletion.
    EXPECT_LT(map.update(key32(2).data(), val64(1).data(), kBpfNoExist), 0);
    EXPECT_LT(map.erase(key32(2).data()), 0);
    EXPECT_LT(map.update(key32(9).data(), val64(1).data(), kBpfAny), 0);
}

TEST(HashMap, InsertLookupDelete)
{
    HashMap map({"h", MapKind::Hash, 4, 8, 8});
    EXPECT_EQ(map.lookup(key32(7).data()), -1);
    ASSERT_EQ(map.update(key32(7).data(), val64(70).data(), kBpfAny), 0);
    const int64_t e = map.lookup(key32(7).data());
    ASSERT_GE(e, 0);
    EXPECT_EQ(loadLe<uint64_t>(map.valueAt(e)), 70u);
    EXPECT_EQ(map.count(), 1u);
    EXPECT_EQ(map.erase(key32(7).data()), 0);
    EXPECT_EQ(map.lookup(key32(7).data()), -1);
    EXPECT_LT(map.erase(key32(7).data()), 0);
}

TEST(HashMap, UpdateFlags)
{
    HashMap map({"h", MapKind::Hash, 4, 8, 8});
    EXPECT_LT(map.update(key32(1).data(), val64(1).data(), kBpfExist), 0);
    EXPECT_EQ(map.update(key32(1).data(), val64(1).data(), kBpfNoExist), 0);
    EXPECT_LT(map.update(key32(1).data(), val64(2).data(), kBpfNoExist), 0);
    EXPECT_EQ(map.update(key32(1).data(), val64(2).data(), kBpfExist), 0);
}

TEST(HashMap, CapacityAndReuse)
{
    HashMap map({"h", MapKind::Hash, 4, 8, 2});
    EXPECT_EQ(map.update(key32(1).data(), val64(1).data(), kBpfAny), 0);
    EXPECT_EQ(map.update(key32(2).data(), val64(2).data(), kBpfAny), 0);
    EXPECT_LT(map.update(key32(3).data(), val64(3).data(), kBpfAny), 0);
    EXPECT_EQ(map.erase(key32(1).data()), 0);
    EXPECT_EQ(map.update(key32(3).data(), val64(3).data(), kBpfAny), 0);
    EXPECT_EQ(map.count(), 2u);
}

TEST(HashMap, EntryIndexStableAcrossOtherOps)
{
    HashMap map({"h", MapKind::Hash, 4, 8, 16});
    ASSERT_EQ(map.update(key32(5).data(), val64(50).data(), kBpfAny), 0);
    const int64_t e = map.lookup(key32(5).data());
    for (uint32_t i = 20; i < 30; ++i)
        map.update(key32(i).data(), val64(i).data(), kBpfAny);
    map.erase(key32(22).data());
    EXPECT_EQ(map.lookup(key32(5).data()), e);
    EXPECT_EQ(loadLe<uint64_t>(map.valueAt(e)), 50u);
}

TEST(LruHashMap, EvictsLeastRecentlyUsed)
{
    LruHashMap map({"l", MapKind::LruHash, 4, 8, 3});
    for (uint32_t i = 1; i <= 3; ++i)
        ASSERT_EQ(map.update(key32(i).data(), val64(i).data(), kBpfAny), 0);
    // Touch 1 and 2; key 3 becomes the LRU victim.
    map.lookup(key32(1).data());
    map.lookup(key32(2).data());
    ASSERT_EQ(map.update(key32(4).data(), val64(4).data(), kBpfAny), 0);
    EXPECT_EQ(map.lookup(key32(3).data()), -1);
    EXPECT_GE(map.lookup(key32(1).data()), 0);
    EXPECT_GE(map.lookup(key32(4).data()), 0);
}

std::vector<uint8_t>
lpmKey(uint32_t prefix_len, uint32_t addr_be)
{
    std::vector<uint8_t> key(8);
    storeLe<uint32_t>(key.data(), prefix_len);
    storeBe<uint32_t>(key.data() + 4, addr_be);
    return key;
}

TEST(LpmTrieMap, LongestPrefixWins)
{
    LpmTrieMap map({"r", MapKind::LpmTrie, 8, 8, 8});
    ASSERT_EQ(map.update(lpmKey(0, 0).data(), val64(1).data(), kBpfAny), 0);
    ASSERT_EQ(map.update(lpmKey(16, 0xc0a80000).data(), val64(2).data(),
                         kBpfAny), 0);
    ASSERT_EQ(map.update(lpmKey(24, 0xc0a85a00).data(), val64(3).data(),
                         kBpfAny), 0);

    auto lookup_val = [&map](uint32_t addr) -> uint64_t {
        const int64_t e = map.lookup(lpmKey(32, addr).data());
        EXPECT_GE(e, 0);
        return loadLe<uint64_t>(map.valueAt(e));
    };
    EXPECT_EQ(lookup_val(0x08080808), 1u);  // default route
    EXPECT_EQ(lookup_val(0xc0a80101), 2u);  // /16
    EXPECT_EQ(lookup_val(0xc0a85a07), 3u);  // /24
}

TEST(LpmTrieMap, ExactReplaceAndDelete)
{
    LpmTrieMap map({"r", MapKind::LpmTrie, 8, 8, 4});
    ASSERT_EQ(map.update(lpmKey(16, 0x0a000000).data(), val64(1).data(),
                         kBpfAny), 0);
    ASSERT_EQ(map.update(lpmKey(16, 0x0a000000).data(), val64(9).data(),
                         kBpfAny), 0);
    EXPECT_EQ(map.count(), 1u);
    const int64_t e = map.lookup(lpmKey(32, 0x0a000001).data());
    ASSERT_GE(e, 0);
    EXPECT_EQ(loadLe<uint64_t>(map.valueAt(e)), 9u);
    EXPECT_EQ(map.erase(lpmKey(16, 0x0a000000).data()), 0);
    EXPECT_EQ(map.lookup(lpmKey(32, 0x0a000001).data()), -1);
}

TEST(LpmTrieMap, RejectsOversizedPrefix)
{
    LpmTrieMap map({"r", MapKind::LpmTrie, 8, 8, 4});
    EXPECT_LT(map.update(lpmKey(33, 0).data(), val64(1).data(), kBpfAny), 0);
}

TEST(LpmTrieMap, NonByteAlignedPrefix)
{
    LpmTrieMap map({"r", MapKind::LpmTrie, 8, 8, 4});
    // 10.128.0.0/9
    ASSERT_EQ(map.update(lpmKey(9, 0x0a800000).data(), val64(5).data(),
                         kBpfAny), 0);
    EXPECT_GE(map.lookup(lpmKey(32, 0x0aff0001).data()), 0);
    EXPECT_EQ(map.lookup(lpmKey(32, 0x0a7f0001).data()), -1);
}

TEST(HostApi, LookupUpdateDelete)
{
    auto map = makeMap({"h", MapKind::Hash, 4, 8, 8});
    EXPECT_FALSE(map->hostLookup(key32(1)).has_value());
    EXPECT_EQ(map->hostUpdate(key32(1), val64(11)), 0);
    auto got = map->hostLookup(key32(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, val64(11));
    EXPECT_EQ(map->hostDelete(key32(1)), 0);
    EXPECT_FALSE(map->hostLookup(key32(1)).has_value());
    // Size validation.
    EXPECT_LT(map->hostUpdate({1, 2}, val64(1)), 0);
    EXPECT_FALSE(map->hostLookup({1}).has_value());
}

TEST(MapSet, EqualityAndDump)
{
    std::vector<MapDef> defs = {{"a", MapKind::Array, 4, 8, 2},
                                {"h", MapKind::Hash, 4, 8, 4}};
    MapSet s1(defs), s2(defs);
    EXPECT_TRUE(MapSet::equal(s1, s2));
    s1.at(1).update(key32(3).data(), val64(3).data(), kBpfAny);
    EXPECT_FALSE(MapSet::equal(s1, s2));
    s2.at(1).update(key32(3).data(), val64(3).data(), kBpfAny);
    EXPECT_TRUE(MapSet::equal(s1, s2));
    EXPECT_NE(s1.dump().find("'h'"), std::string::npos);
    EXPECT_NE(s1.byName("a"), nullptr);
    EXPECT_EQ(s1.byName("zzz"), nullptr);
}

TEST(MapSet, SnapshotOrderIndependent)
{
    std::vector<MapDef> defs = {{"h", MapKind::Hash, 4, 8, 8}};
    MapSet s1(defs), s2(defs);
    for (uint32_t i = 0; i < 5; ++i)
        s1.at(0).update(key32(i).data(), val64(i).data(), kBpfAny);
    for (uint32_t i = 5; i-- > 0;)
        s2.at(0).update(key32(i).data(), val64(i).data(), kBpfAny);
    EXPECT_TRUE(MapSet::equal(s1, s2));
}

/** Randomized hash map vs std::map reference model. */
class HashModelTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HashModelTest, MatchesReferenceModel)
{
    Rng rng(GetParam());
    HashMap map({"h", MapKind::Hash, 4, 8, 32});
    std::map<uint32_t, uint64_t> model;
    for (int step = 0; step < 500; ++step) {
        const uint32_t key = static_cast<uint32_t>(rng.below(48));
        switch (rng.below(3)) {
          case 0: {
            const uint64_t value = rng.next();
            const int rc =
                map.update(key32(key).data(), val64(value).data(), kBpfAny);
            if (model.size() < 32 || model.count(key)) {
                ASSERT_EQ(rc, 0);
                model[key] = value;
            } else {
                ASSERT_LT(rc, 0);
            }
            break;
          }
          case 1: {
            const int64_t e = map.lookup(key32(key).data());
            if (model.count(key)) {
                ASSERT_GE(e, 0);
                EXPECT_EQ(loadLe<uint64_t>(map.valueAt(e)), model[key]);
            } else {
                EXPECT_EQ(e, -1);
            }
            break;
          }
          case 2:
            if (model.count(key)) {
                EXPECT_EQ(map.erase(key32(key).data()), 0);
                model.erase(key);
            } else {
                EXPECT_LT(map.erase(key32(key).data()), 0);
            }
            break;
        }
        ASSERT_EQ(map.count(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashModelTest,
                         ::testing::Range<uint64_t>(0, 16));

TEST(MapFactory, RejectsBadConfigs)
{
    EXPECT_THROW(makeMap({"a", MapKind::Array, 8, 8, 2}), FatalError);
    EXPECT_THROW(makeMap({"l", MapKind::LpmTrie, 4, 8, 2}), FatalError);
}

TEST(MapSetCopy, DeepCopyPreservesContentsAndGeneration)
{
    const std::vector<MapDef> defs = {
        {"h", MapKind::Hash, 4, 8, 8},
        {"a", MapKind::Array, 4, 8, 4},
        {"r", MapKind::LpmTrie, 8, 8, 8},
    };
    MapSet src(defs);
    ASSERT_EQ(src.byName("h")->hostUpdate(key32(1), val64(10)), 0);
    ASSERT_EQ(src.byName("a")->hostUpdate(key32(2), val64(20)), 0);
    ASSERT_EQ(src.byName("r")->hostUpdate(lpmKey(16, 0xc0a80000),
                                          val64(30)),
              0);
    src.byName("h")->bumpGeneration();
    src.byName("h")->bumpGeneration();

    MapSet dst(defs);
    dst.copyContentsFrom(src);
    EXPECT_TRUE(MapSet::equal(src, dst));
    // The epoch counter travels with the contents; the source keeps its
    // own storage (mutating the copy must not leak back).
    EXPECT_EQ(dst.byName("h")->generation(),
              src.byName("h")->generation());
    ASSERT_EQ(dst.byName("h")->hostUpdate(key32(5), val64(50)), 0);
    EXPECT_FALSE(src.byName("h")->hostLookup(key32(5)).has_value());
}

TEST(MapSetCopy, LruCopyEvictsSameVictimAsSource)
{
    // The copy must replicate LRU recency, not just the key→value view:
    // after identical subsequent updates, source and copy evict the same
    // victim. This is what lets a sharded replica seeded from the loaded
    // state stay bit-identical to the reference under host churn.
    const std::vector<MapDef> defs = {{"l", MapKind::LruHash, 4, 8, 3}};
    MapSet src(defs);
    Map *sl = src.byName("l");
    for (uint32_t i = 1; i <= 3; ++i)
        ASSERT_EQ(sl->hostUpdate(key32(i), val64(i)), 0);
    // Touch 1 and 2 so key 3 is the LRU victim in the source.
    ASSERT_TRUE(sl->hostLookup(key32(1)).has_value());
    ASSERT_TRUE(sl->hostLookup(key32(2)).has_value());

    MapSet dst(defs);
    dst.copyContentsFrom(src);
    Map *dl = dst.byName("l");
    ASSERT_EQ(sl->hostUpdate(key32(4), val64(4)), 0);
    ASSERT_EQ(dl->hostUpdate(key32(4), val64(4)), 0);
    // Both evicted key 3, neither evicted anything else.
    EXPECT_FALSE(sl->hostLookup(key32(3)).has_value());
    EXPECT_FALSE(dl->hostLookup(key32(3)).has_value());
    for (uint32_t k : {1u, 2u, 4u}) {
        EXPECT_TRUE(sl->hostLookup(key32(k)).has_value()) << k;
        EXPECT_TRUE(dl->hostLookup(key32(k)).has_value()) << k;
    }
    EXPECT_TRUE(MapSet::equal(src, dst));
}

TEST(MapSetCopy, CopiesAreIdenticalUnderIdenticalBatches)
{
    // Shared-mode (one set) and sharded-mode (per-replica copies) must
    // expose identical contents after the same host batch lands on each.
    const std::vector<MapDef> defs = {{"h", MapKind::Hash, 4, 8, 8}};
    MapSet shared(defs);
    ASSERT_EQ(shared.byName("h")->hostUpdate(key32(1), val64(1)), 0);

    std::vector<MapSet> shards(3);
    for (MapSet &shard : shards) {
        shard = MapSet(defs);
        shard.copyContentsFrom(shared);
    }
    const auto batch = [](MapSet &m) {
        ASSERT_EQ(m.byName("h")->hostUpdate(key32(2), val64(2)), 0);
        ASSERT_EQ(m.byName("h")->hostDelete(key32(1)), 0);
        ASSERT_EQ(m.byName("h")->hostUpdate(key32(3), val64(3),
                                            kBpfNoExist),
                  0);
    };
    batch(shared);
    for (MapSet &shard : shards) {
        batch(shard);
        EXPECT_TRUE(MapSet::equal(shared, shard));
    }
}

}  // namespace
}  // namespace ehdl::ebpf
