/**
 * @file
 * Multi-queue pipeline replication: RSS dispatch properties, equivalence
 * of the N-replica aggregate with a single pipeline (and with the
 * sequential reference VM) on hash-disjoint flows, determinism of the
 * threaded drain, and modeled throughput scaling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "net/headers.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl {
namespace {

using apps::AppSpec;
using ebpf::MapSet;
using sim::MapMode;
using sim::MultiPipeSim;
using sim::MultiPipeSimConfig;
using sim::PacketOutcome;

std::vector<net::Packet>
makeTrace(const AppSpec &spec, uint64_t num_flows, int num_packets,
          double reverse_fraction, uint64_t seed = 17)
{
    sim::TrafficConfig config;
    config.numFlows = num_flows;
    config.reverseFraction = reverse_fraction;
    config.seed = seed;
    config.ipProto = spec.ipProto;
    sim::TrafficGen gen(config);
    std::vector<net::Packet> packets;
    packets.reserve(static_cast<size_t>(num_packets));
    for (int i = 0; i < num_packets; ++i)
        packets.push_back(gen.next());
    return packets;
}

MultiPipeSimConfig
bigQueues(unsigned replicas, MapMode mode, bool threaded = false)
{
    MultiPipeSimConfig config;
    config.numReplicas = replicas;
    config.mapMode = mode;
    config.threaded = threaded;
    config.pipe.inputQueueCapacity = 1u << 20;
    return config;
}

TEST(MultiPipeSimDispatch, SymmetricAcrossFlowDirections)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    MultiPipeSim multi(pipe, maps, bigQueues(4, MapMode::Sharded));

    // Forward and reverse packets of the same flow land on one replica.
    const auto packets = makeTrace(spec, 64, 512, 0.5);
    std::map<uint32_t, size_t> replica_of_hash;
    for (const net::Packet &pkt : packets) {
        net::FlowKey flow;
        ASSERT_TRUE(net::PacketFactory::parseFlow(pkt, flow));
        net::FlowKey canon = flow;
        const net::FlowKey rev = flow.reversed();
        if (std::tie(rev.srcIp, rev.srcPort) <
            std::tie(canon.srcIp, canon.srcPort))
            canon = rev;
        const uint32_t hash = MultiPipeSim::symmetricFlowHash(pkt);
        const size_t replica = multi.dispatch(pkt);
        auto [it, inserted] =
            replica_of_hash.emplace(net::FlowKeyHash{}(canon), replica);
        EXPECT_EQ(it->second, replica) << "flow split across replicas";
        EXPECT_EQ(hash % 4, replica);
    }
}

TEST(MultiPipeSimDispatch, BalancesManyFlows)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    MultiPipeSim multi(pipe, maps, bigQueues(4, MapMode::Sharded));

    const auto packets = makeTrace(spec, 1024, 4096, 0.0);
    std::vector<int> per_replica(4, 0);
    for (const net::Packet &pkt : packets)
        per_replica[multi.dispatch(pkt)]++;
    for (int count : per_replica) {
        // A fair hash keeps every replica between ~10% and ~45%.
        EXPECT_GT(count, 4096 / 10);
        EXPECT_LT(count, 4096 * 45 / 100);
    }
}

TEST(MultiPipeSimDispatch, NonIpv4PinsToReplicaZero)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    MultiPipeSim multi(pipe, maps, bigQueues(4, MapMode::Sharded));

    net::Packet raw(64);  // zero-filled: not an IPv4 frame
    EXPECT_EQ(MultiPipeSim::symmetricFlowHash(raw), 0u);
    EXPECT_EQ(multi.dispatch(raw), 0u);
}

TEST(MultiPipeSim, RejectsThreadedSharedMaps)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    EXPECT_THROW(
        MultiPipeSim(pipe, maps, bigQueues(2, MapMode::Shared, true)),
        FatalError);
}

TEST(MultiPipeSim, RejectsZeroReplicas)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    MapSet maps(spec.prog.maps);
    spec.seedMaps(maps);
    EXPECT_THROW(MultiPipeSim(pipe, maps, bigQueues(0, MapMode::Sharded)),
                 FatalError);
}

/**
 * Hash-disjoint flows: the aggregate of N replicas with one shared map
 * set must match both a single-pipeline run and the sequential VM —
 * same per-packet verdicts and bytes, identical final map state. Flow
 * state is keyed by the 5-tuple, and the symmetric dispatch pins each
 * flow (both directions) to one replica, so replication must not be
 * observable.
 */
void
checkSharedEquivalence(const AppSpec &spec, uint64_t flows, int npkts,
                       double reverse)
{
    const hdl::Pipeline pipe = hdl::compile(spec.prog);

    const auto packets = makeTrace(spec, flows, npkts, reverse);

    MapSet multi_maps(spec.prog.maps);
    spec.seedMaps(multi_maps);
    MultiPipeSim multi(pipe, multi_maps, bigQueues(4, MapMode::Shared));
    for (const net::Packet &pkt : packets)
        ASSERT_TRUE(multi.offer(pkt));
    multi.drain();
    EXPECT_EQ(multi.stats().completed, static_cast<uint64_t>(npkts));

    MapSet single_maps(spec.prog.maps);
    spec.seedMaps(single_maps);
    sim::PipeSimConfig single_config;
    single_config.inputQueueCapacity = 1u << 20;
    sim::PipeSim single(pipe, single_maps, single_config);
    for (const net::Packet &pkt : packets)
        ASSERT_TRUE(single.offer(pkt));
    single.drain();

    MapSet vm_maps(spec.prog.maps);
    spec.seedMaps(vm_maps);
    ebpf::Vm vm(spec.prog, vm_maps);

    std::map<uint64_t, const PacketOutcome *> single_by_id;
    for (const PacketOutcome &out : single.outcomes())
        single_by_id[out.id] = &out;

    const auto merged = multi.outcomes();
    ASSERT_EQ(merged.size(), packets.size());
    int mismatches = 0;
    for (size_t i = 0; i < packets.size(); ++i) {
        net::Packet copy = packets[i];
        const ebpf::ExecResult ref = vm.run(copy);
        const PacketOutcome &out = merged[i];
        ASSERT_EQ(out.id, packets[i].id);
        const PacketOutcome &sout = *single_by_id.at(out.id);
        if (out.action != ref.action || out.bytes != copy.bytes() ||
            out.redirectIfindex != ref.redirectIfindex)
            ++mismatches;
        if (out.action != sout.action || out.bytes != sout.bytes)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_TRUE(MapSet::equal(multi_maps, vm_maps))
        << "multi:\n" << multi_maps.dump() << "\nvm:\n" << vm_maps.dump();
    EXPECT_TRUE(MapSet::equal(multi_maps, single_maps));
}

TEST(MultiPipeSimEquivalence, FirewallSharedMaps)
{
    checkSharedEquivalence(apps::makeSimpleFirewall(), 96, 1500, 0.3);
}

TEST(MultiPipeSimEquivalence, LeakyBucketSharedMaps)
{
    checkSharedEquivalence(apps::makeLeakyBucket(), 32, 1500, 0.0);
}

/** Per-packet outcomes in sharded mode also match the sequential VM. */
TEST(MultiPipeSimEquivalence, FirewallShardedOutcomes)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const auto packets = makeTrace(spec, 96, 1500, 0.3);

    MapSet seed_maps(spec.prog.maps);
    spec.seedMaps(seed_maps);
    MultiPipeSim multi(pipe, seed_maps, bigQueues(4, MapMode::Sharded));
    for (const net::Packet &pkt : packets)
        ASSERT_TRUE(multi.offer(pkt));
    multi.drain();

    MapSet vm_maps(spec.prog.maps);
    spec.seedMaps(vm_maps);
    ebpf::Vm vm(spec.prog, vm_maps);

    const auto merged = multi.outcomes();
    ASSERT_EQ(merged.size(), packets.size());
    int mismatches = 0;
    for (size_t i = 0; i < packets.size(); ++i) {
        net::Packet copy = packets[i];
        const ebpf::ExecResult ref = vm.run(copy);
        if (merged[i].action != ref.action ||
            merged[i].bytes != copy.bytes())
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
    // Sharding must not have leaked state across replicas: the template
    // map set passed to the constructor stays untouched.
    MapSet pristine(spec.prog.maps);
    spec.seedMaps(pristine);
    EXPECT_TRUE(MapSet::equal(seed_maps, pristine));
}

/** Two threaded runs of the same trace agree exactly. */
TEST(MultiPipeSimDeterminism, ThreadedRunsAreIdentical)
{
    const AppSpec spec = apps::makeLeakyBucket();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const auto packets = makeTrace(spec, 24, 2000, 0.0);

    auto run = [&](std::vector<PacketOutcome> &outcomes,
                   sim::PipeSimStats &stats) {
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        MultiPipeSim multi(pipe, maps,
                           bigQueues(4, MapMode::Sharded, true));
        for (const net::Packet &pkt : packets)
            ASSERT_TRUE(multi.offer(pkt));
        multi.drain();
        outcomes = multi.outcomes();
        stats = multi.stats();
    };

    std::vector<PacketOutcome> out_a, out_b;
    sim::PipeSimStats stats_a, stats_b;
    run(out_a, stats_a);
    run(out_b, stats_b);

    EXPECT_EQ(stats_a.cycles, stats_b.cycles);
    EXPECT_EQ(stats_a.completed, stats_b.completed);
    EXPECT_EQ(stats_a.flushEvents, stats_b.flushEvents);
    EXPECT_EQ(stats_a.stallCycles, stats_b.stallCycles);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (size_t i = 0; i < out_a.size(); ++i) {
        EXPECT_EQ(out_a[i].id, out_b[i].id);
        EXPECT_EQ(out_a[i].action, out_b[i].action);
        EXPECT_EQ(out_a[i].bytes, out_b[i].bytes);
        EXPECT_EQ(out_a[i].exitCycle, out_b[i].exitCycle);
    }
}

/** Threaded and lockstep drains of sharded replicas agree exactly. */
TEST(MultiPipeSimDeterminism, ThreadedMatchesLockstep)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    const auto packets = makeTrace(spec, 48, 1200, 0.25);

    auto run = [&](bool threaded) {
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        MultiPipeSim multi(pipe, maps,
                           bigQueues(4, MapMode::Sharded, threaded));
        for (const net::Packet &pkt : packets)
            EXPECT_TRUE(multi.offer(pkt));
        multi.drain();
        return multi.outcomes();
    };

    const auto threaded = run(true);
    const auto lockstep = run(false);
    ASSERT_EQ(threaded.size(), lockstep.size());
    for (size_t i = 0; i < threaded.size(); ++i) {
        EXPECT_EQ(threaded[i].id, lockstep[i].id);
        EXPECT_EQ(threaded[i].action, lockstep[i].action);
        EXPECT_EQ(threaded[i].bytes, lockstep[i].bytes);
    }
}

/**
 * Modeled throughput scaling: with hash-balanced back-to-back traffic,
 * four replicas must sustain at least 3x the modeled packet rate of a
 * single pipeline (the paper's motivation for multi-queue replication).
 */
TEST(MultiPipeSimScaling, FourReplicasBeatThreeX)
{
    const AppSpec spec = apps::makeSimpleFirewall();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    auto packets = makeTrace(spec, 512, 6000, 0.0);
    for (net::Packet &pkt : packets)
        pkt.arrivalNs = 0;  // saturating offered load

    auto modeled_mpps = [&](unsigned replicas) {
        MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        MultiPipeSim multi(pipe, maps,
                           bigQueues(replicas, MapMode::Sharded));
        for (const net::Packet &pkt : packets)
            EXPECT_TRUE(multi.offer(pkt));
        multi.drain();
        const sim::PipeSimStats stats = multi.stats();
        EXPECT_EQ(stats.completed, packets.size());
        return stats.throughputMpps(multi.config().pipe.clockHz);
    };

    const double one = modeled_mpps(1);
    const double four = modeled_mpps(4);
    EXPECT_GE(four, 3.0 * one);
}

}  // namespace
}  // namespace ehdl
