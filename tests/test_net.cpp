/**
 * @file
 * Unit and property tests for src/net: packet buffers with XDP headroom,
 * header construction/parsing, and Internet checksums (including the
 * incremental RFC 1624 form the DNAT pipeline relies on).
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"

#include <fstream>

namespace ehdl::net {
namespace {

TEST(Packet, BuildFromBytes)
{
    Packet pkt(std::vector<uint8_t>{1, 2, 3, 4});
    EXPECT_EQ(pkt.size(), 4u);
    EXPECT_EQ(pkt.at(0), 1);
    EXPECT_EQ(pkt.at(3), 4);
    EXPECT_EQ(pkt.headroom(), kXdpHeadroom);
}

TEST(Packet, SetAndBounds)
{
    Packet pkt(8u);
    pkt.set(7, 0xaa);
    EXPECT_EQ(pkt.at(7), 0xaa);
    EXPECT_THROW(pkt.at(8), PanicError);
    EXPECT_THROW(pkt.set(8, 1), PanicError);
}

TEST(Packet, AdjustHeadGrows)
{
    Packet pkt(std::vector<uint8_t>{9, 9});
    ASSERT_TRUE(pkt.adjustHead(-4));
    EXPECT_EQ(pkt.size(), 6u);
    EXPECT_EQ(pkt.at(4), 9);
    pkt.set(0, 7);
    EXPECT_EQ(pkt.bytes().front(), 7);
}

TEST(Packet, AdjustHeadShrinkAndLimits)
{
    Packet pkt(std::vector<uint8_t>(10, 1));
    ASSERT_TRUE(pkt.adjustHead(4));
    EXPECT_EQ(pkt.size(), 6u);
    EXPECT_FALSE(pkt.adjustHead(100));              // beyond the end
    EXPECT_FALSE(pkt.adjustHead(-10000));           // beyond headroom
    EXPECT_EQ(pkt.size(), 6u);                      // unchanged on failure
}

TEST(Headers, BuildParseRoundTrip)
{
    PacketSpec spec;
    spec.flow = {0x0a000001, 0xc0a80001, 1234, 53, kIpProtoUdp};
    spec.totalLen = 100;
    Packet pkt = PacketFactory::build(spec);
    EXPECT_EQ(pkt.size(), 100u);
    FlowKey parsed;
    ASSERT_TRUE(PacketFactory::parseFlow(pkt, parsed));
    EXPECT_EQ(parsed, spec.flow);
    EXPECT_EQ(PacketFactory::etherType(pkt), kEthPIp);
}

TEST(Headers, TcpVariant)
{
    PacketSpec spec;
    spec.flow = {1, 2, 80, 443, kIpProtoTcp};
    Packet pkt = PacketFactory::build(spec);
    FlowKey parsed;
    ASSERT_TRUE(PacketFactory::parseFlow(pkt, parsed));
    EXPECT_EQ(parsed.proto, kIpProtoTcp);
    EXPECT_EQ(parsed.srcPort, 80);
}

TEST(Headers, NonIpNotParsed)
{
    PacketSpec spec;
    spec.etherType = kEthPArp;
    Packet pkt = PacketFactory::build(spec);
    FlowKey parsed;
    EXPECT_FALSE(PacketFactory::parseFlow(pkt, parsed));
}

TEST(Headers, Ipv4ChecksumValidatesToZero)
{
    PacketSpec spec;
    spec.flow = {0x01020304, 0x05060708, 1000, 2000, kIpProtoUdp};
    Packet pkt = PacketFactory::build(spec);
    // Sum over the header including the checksum field must be 0xffff.
    const uint16_t sum =
        onesComplementSum(pkt.data() + kEthHdrLen, kIpv4HdrLen);
    EXPECT_EQ(sum, 0xffff);
}

TEST(Headers, ReversedFlow)
{
    FlowKey k{1, 2, 10, 20, kIpProtoUdp};
    FlowKey r = k.reversed();
    EXPECT_EQ(r.srcIp, 2u);
    EXPECT_EQ(r.dstIp, 1u);
    EXPECT_EQ(r.srcPort, 20);
    EXPECT_EQ(r.dstPort, 10);
    EXPECT_EQ(r.reversed(), k);
}

TEST(Headers, FlowKeyHashSpreads)
{
    FlowKeyHash hash;
    FlowKey a{1, 2, 3, 4, 17};
    FlowKey b{1, 2, 3, 5, 17};
    EXPECT_NE(hash(a), hash(b));
    EXPECT_EQ(hash(a), hash(a));
}

TEST(Headers, MinimumLengthEnforced)
{
    PacketSpec spec;
    spec.totalLen = 10;  // below headers
    Packet pkt = PacketFactory::build(spec);
    EXPECT_GE(pkt.size(), kEthHdrLen + kIpv4HdrLen + kUdpHdrLen);
}

TEST(Checksum, KnownVector)
{
    // RFC 1071 example bytes.
    const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(onesComplementSum(data, sizeof(data)), 0xddf2);
    EXPECT_EQ(internetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, OddLength)
{
    const uint8_t data[] = {0x12, 0x34, 0x56};
    EXPECT_EQ(onesComplementSum(data, 3), 0x1234 + 0x5600);
}

/** Incremental updates must agree with full recomputation. */
class ChecksumUpdateTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ChecksumUpdateTest, Incremental32MatchesRecompute)
{
    Rng rng(GetParam());
    std::vector<uint8_t> buf(40);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next());
    const size_t field = 2 * (rng.below(18));  // 16-bit aligned offset
    const uint16_t before = internetChecksum(buf.data(), buf.size());

    const uint32_t old_val = loadBe<uint32_t>(buf.data() + field);
    const uint32_t new_val = static_cast<uint32_t>(rng.next());
    storeBe<uint32_t>(buf.data() + field, new_val);
    const uint16_t expected = internetChecksum(buf.data(), buf.size());
    EXPECT_EQ(checksumUpdate32(before, old_val, new_val), expected);
}

TEST_P(ChecksumUpdateTest, Incremental16MatchesRecompute)
{
    Rng rng(GetParam() * 977 + 5);
    std::vector<uint8_t> buf(20);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next());
    const size_t field = 2 * rng.below(10);
    const uint16_t before = internetChecksum(buf.data(), buf.size());
    const uint16_t old_val = loadBe<uint16_t>(buf.data() + field);
    const uint16_t new_val = static_cast<uint16_t>(rng.next());
    storeBe<uint16_t>(buf.data() + field, new_val);
    const uint16_t expected = internetChecksum(buf.data(), buf.size());
    EXPECT_EQ(checksumUpdate16(before, old_val, new_val), expected);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, ChecksumUpdateTest,
                         ::testing::Range<uint64_t>(0, 24));


TEST(Pcap, WriteReadRoundTrip)
{
    std::vector<Packet> packets;
    for (int i = 0; i < 5; ++i) {
        PacketSpec spec;
        spec.flow = {0x0a000000u + static_cast<uint32_t>(i), 0xc0a80001,
                     1000, 53, kIpProtoUdp};
        spec.totalLen = 64 + 10 * i;
        Packet pkt = PacketFactory::build(spec);
        pkt.arrivalNs = 1000000ULL * (i + 1) + i;
        packets.push_back(std::move(pkt));
    }
    const std::string path = ::testing::TempDir() + "/ehdl_test.pcap";
    writePcap(path, packets);
    const std::vector<Packet> back = readPcap(path);
    ASSERT_EQ(back.size(), packets.size());
    for (size_t i = 0; i < packets.size(); ++i) {
        EXPECT_EQ(back[i].bytes(), packets[i].bytes());
        EXPECT_EQ(back[i].arrivalNs, packets[i].arrivalNs);
        EXPECT_EQ(back[i].id, i + 1);
    }
}

TEST(Pcap, RandomizedRoundTrip)
{
    // Property sweep: arbitrary payload bytes, lengths and timestamps
    // (including sub-microsecond deltas and identical stamps) must
    // survive write->read bit-for-bit.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 7919);
        std::vector<Packet> packets;
        uint64_t ns = 0;
        const unsigned n = 1 + rng.below(40);
        for (unsigned i = 0; i < n; ++i) {
            std::vector<uint8_t> bytes(14 + rng.below(1500));
            for (uint8_t &b : bytes)
                b = static_cast<uint8_t>(rng.next());
            Packet pkt(std::move(bytes));
            ns += rng.below(2'000'000'000u);  // may stay equal (delta 0)
            pkt.arrivalNs = ns;
            packets.push_back(std::move(pkt));
        }
        const std::string path = ::testing::TempDir() + "/ehdl_rand.pcap";
        writePcap(path, packets);
        const std::vector<Packet> back = readPcap(path);
        ASSERT_EQ(back.size(), packets.size()) << "seed " << seed;
        for (size_t i = 0; i < packets.size(); ++i) {
            EXPECT_EQ(back[i].bytes(), packets[i].bytes())
                << "seed " << seed << " packet " << i;
            EXPECT_EQ(back[i].arrivalNs, packets[i].arrivalNs)
                << "seed " << seed << " packet " << i;
        }
    }
}

TEST(Pcap, RejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/ehdl_bad.pcap";
    std::ofstream(path, std::ios::binary) << "not a pcap file at all....";
    EXPECT_THROW(readPcap(path), FatalError);
    EXPECT_THROW(readPcap("/nonexistent/nope.pcap"), FatalError);
}

}  // namespace
}  // namespace ehdl::net
