/**
 * @file
 * NIC-shell and power-model tests: line-rate math, end-to-end latency
 * composition, and the section 5.2 power constants.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "hdl/compiler.hpp"
#include "sim/nic_shell.hpp"
#include "sim/pipe_sim.hpp"

namespace ehdl::sim {
namespace {

TEST(NicShell, LineRateMath)
{
    NicShellConfig shell;
    // 64B + 20B overhead at 100 Gbps -> 148.8 Mpps.
    EXPECT_NEAR(shell.lineRateMpps(64), 148.8, 0.1);
    // 1500B frames -> ~8.2 Mpps.
    EXPECT_NEAR(shell.lineRateMpps(1500), 8.22, 0.05);
    NicShellConfig slow;
    slow.portGbps = 10.0;
    EXPECT_NEAR(slow.lineRateMpps(64), 14.88, 0.01);
}

TEST(NicShell, EndToEndComposesLatencies)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    ebpf::MapSet maps(pipe.prog.maps);
    PipeSimConfig config;
    config.inputQueueCapacity = 128;
    PipeSim sim(pipe, maps, config);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    pkt.id = 1;
    sim.offer(pkt);
    sim.drain();

    NicShellConfig shell;
    const EndToEndResult e2e = summarizeEndToEnd(sim, 64, shell);
    EXPECT_NEAR(e2e.avgLatencyNs, shell.shellLatencyNs + sim.avgLatencyNs(),
                1e-9);
    EXPECT_NEAR(e2e.lineRateMpps, 148.8, 0.1);
    // A single packet has negligible measured throughput; the cap logic
    // must still hold.
    EXPECT_LE(e2e.throughputMpps, e2e.lineRateMpps);
    EXPECT_EQ(e2e.lostPackets, 0u);
}

TEST(NicShell, ThroughputCappedByLineRate)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    ebpf::MapSet maps(pipe.prog.maps);
    PipeSimConfig config;
    config.inputQueueCapacity = 1u << 16;
    PipeSim sim(pipe, maps, config);
    for (int i = 1; i <= 5000; ++i) {
        net::PacketSpec spec;
        net::Packet pkt = net::PacketFactory::build(spec);
        pkt.id = static_cast<uint64_t>(i);
        sim.offer(pkt);  // all at time zero: pipeline runs at 250 Mpps
    }
    sim.drain();
    const EndToEndResult e2e = summarizeEndToEnd(sim);
    EXPECT_GT(e2e.pipelineMpps, 200.0);            // pipeline capability
    EXPECT_NEAR(e2e.throughputMpps, 148.8, 0.5);   // port-limited
}

TEST(PowerModel, PaperConstants)
{
    const PowerModel power;
    // Section 5.2: 80-85 W with the U50, 100-105 W with the BlueField-2.
    EXPECT_GE(power.u50SystemW(), 80.0);
    EXPECT_LE(power.u50SystemW(), 85.0);
    EXPECT_GE(power.bf2SystemW(), 100.0);
    EXPECT_LE(power.bf2SystemW(), 105.0);
}

}  // namespace
}  // namespace ehdl::sim
