/**
 * @file
 * Tests for the instrumented pass pipeline behind hdl::compile: the
 * Diagnostics sink, compileWithReport()'s CompileReport (per-pass
 * timings, pipeline geometry, structured rejection), the --dump-after
 * observer hook, and the no-fatal guarantee over the fuzzer's program
 * generator.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "common/diagnostics.hpp"
#include "common/logging.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "fuzz/gen.hpp"
#include "hdl/compiler.hpp"
#include "hdl/passes/pass.hpp"

namespace ehdl::hdl {
namespace {

using apps::AppSpec;
using ebpf::assemble;

// ---------------------------------------------------------------- sink --

TEST(Diagnostics, AccumulatesAndLocates)
{
    Diagnostics d;
    EXPECT_TRUE(d.empty());
    EXPECT_FALSE(d.hasErrors());

    d.error("hazards", "atomic between read and write").atPc(11).atStage(7);
    d.warning("verify", "suspicious bounds");
    d.note("schedule", "fused ", 2, " rows");

    EXPECT_EQ(d.size(), 3u);
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.errorCount(), 1u);
    EXPECT_EQ(d.warningCount(), 1u);
    EXPECT_EQ(d.count(Severity::Note), 1u);

    ASSERT_NE(d.firstError(), nullptr);
    EXPECT_EQ(d.firstError()->pass, "hazards");
    EXPECT_EQ(d.firstError()->pc, 11u);
    EXPECT_EQ(d.firstError()->stage, 7u);

    const std::string line = d.firstError()->str();
    EXPECT_NE(line.find("error[hazards]"), std::string::npos);
    EXPECT_NE(line.find("insn 11"), std::string::npos);
    EXPECT_NE(line.find("stage 7"), std::string::npos);

    const std::string text = d.render();
    EXPECT_NE(text.find("warning[verify]"), std::string::npos);
    EXPECT_NE(text.find("note[schedule]: fused 2 rows"), std::string::npos);
}

TEST(Diagnostics, MergeAppends)
{
    Diagnostics a, b;
    a.error("verify", "one");
    b.error("hazards", "two");
    b.note("cfg", "three");
    a.merge(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.errorCount(), 2u);
    EXPECT_EQ(a.all().back().pass, "cfg");
}

// ------------------------------------------------------------- success --

TEST(Passes, ReportRecordsEveryPassInOrder)
{
    const AppSpec toy = apps::makeToyCounter();
    const CompileResult r = compileWithReport(toy.prog);
    ASSERT_TRUE(r.pipeline.has_value());
    EXPECT_TRUE(r.report.ok);
    EXPECT_FALSE(r.report.diags.hasErrors());
    EXPECT_EQ(r.report.program, "toy_counter");

    const std::vector<std::string> names = passNames();
    ASSERT_EQ(r.report.passes.size(), names.size());
    double sum = 0.0;
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(r.report.passes[i].name, names[i]);
        EXPECT_GE(r.report.passes[i].seconds, 0.0);
        sum += r.report.passes[i].seconds;
    }
    EXPECT_GE(r.report.totalSeconds, sum);
}

TEST(Passes, ReportGeometryMatchesPipeline)
{
    for (const AppSpec &spec : apps::paperApps()) {
        const CompileResult r = compileWithReport(spec.prog);
        ASSERT_TRUE(r.pipeline.has_value()) << spec.prog.name;
        const Pipeline &pipe = *r.pipeline;
        const CompileReport &rep = r.report;
        EXPECT_EQ(rep.stages, pipe.numStages()) << spec.prog.name;
        EXPECT_EQ(rep.insns, pipe.prog.size());
        EXPECT_EQ(rep.blocks, pipe.numBlocks());
        EXPECT_EQ(rep.mapPorts, pipe.mapPorts.size());
        EXPECT_EQ(rep.warBuffers, pipe.warBuffers.size());
        EXPECT_EQ(rep.flushBlocks, pipe.flushBlocks.size());
        EXPECT_EQ(rep.elasticBuffers, pipe.elasticBuffers.size());
        EXPECT_EQ(rep.maxFlushDepth, pipe.maxFlushDepth());

        uint64_t live_regs = 0;
        uint64_t live_stack = 0;
        unsigned pads = 0;
        for (const Stage &stage : pipe.stages) {
            live_regs += stage.numLiveRegs();
            live_stack += stage.liveStack.count();
            pads += stage.isPad ? 1 : 0;
        }
        EXPECT_EQ(rep.liveRegsTotal, live_regs);
        EXPECT_EQ(rep.liveStackBytesTotal, live_stack);
        EXPECT_EQ(rep.framingPads + rep.helperPads, pads);
        EXPECT_EQ(rep.fullRegsTotal, 11u * pipe.numStages());
        EXPECT_EQ(rep.fullStackBytesTotal, 512u * pipe.numStages());
        EXPECT_GE(rep.maxIlp, 1u);
        EXPECT_GE(rep.avgIlp, 1.0);

        const Json json = rep.toJson();
        const std::string text = json.dump();
        EXPECT_NE(text.find("\"passes\""), std::string::npos);
        EXPECT_NE(text.find("\"geometry\""), std::string::npos);
    }
}

TEST(Passes, ObserverSeesEveryPass)
{
    std::vector<std::string> seen;
    bool dumps_nonempty = true;
    const CompileResult r = compileWithReport(
        apps::makeSimpleFirewall().prog, {},
        [&](const std::string &pass, const CompileContext &ctx) {
            seen.push_back(pass);
            if (ctx.dump().empty())
                dumps_nonempty = false;
        });
    ASSERT_TRUE(r.pipeline.has_value());
    EXPECT_EQ(seen, passNames());
    EXPECT_TRUE(dumps_nonempty);
}

TEST(Passes, DumpRendersMostRefinedIr)
{
    std::string after_schedule;
    std::string after_hazards;
    (void)compileWithReport(
        apps::makeToyCounter().prog, {},
        [&](const std::string &pass, const CompileContext &ctx) {
            if (pass == "schedule")
                after_schedule = ctx.dump();
            if (pass == "hazards")
                after_hazards = ctx.dump();
        });
    EXPECT_NE(after_schedule.find("block"), std::string::npos);
    EXPECT_NE(after_hazards.find("stage 0"), std::string::npos);
    EXPECT_NE(after_hazards.find("hazard"), std::string::npos);
}

TEST(Passes, RegistryIsConsistent)
{
    const std::vector<std::string> names = passNames();
    EXPECT_EQ(names.size(), compilerPasses().size());
    for (const std::string &name : names) {
        const Pass *p = findPass(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name, name);
        EXPECT_NE(std::string(p->summary), "");
    }
    EXPECT_EQ(findPass("no-such-pass"), nullptr);
}

// ----------------------------------------------------------- rejection --

TEST(Passes, HazardRejectionCarriesStageLocations)
{
    // Same program test_compiler.cpp rejects via compile(): atomic on a
    // map between that map's index read and its value write.
    ebpf::Program prog = assemble(R"(
        .map m hash 4 16 16
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r4 = *(u64 *)(r0 + 0)
        r2 = 1
        lock *(u64 *)(r0 + 8) += r2
        r4 += 1
        *(u64 *)(r0 + 0) = r4
        out:
        r0 = 2
        exit
    )");
    const CompileResult r = compileWithReport(prog);
    EXPECT_FALSE(r.pipeline.has_value());
    EXPECT_FALSE(r.report.ok);
    ASSERT_TRUE(r.report.diags.hasErrors());
    const Diagnostic *first = r.report.diags.firstError();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->pass, "hazards");
    EXPECT_NE(first->stage, SIZE_MAX);
    // The pipeline stopped at the failing pass: hazards ran last.
    ASSERT_FALSE(r.report.passes.empty());
    EXPECT_EQ(r.report.passes.back().name, "hazards");
}

TEST(Passes, VerifyRejectionAccumulatesAllErrors)
{
    // Two independent uninitialized-register reads: the old fatal() path
    // stopped at the first; the diagnostics path reports both.
    ebpf::ProgramBuilder b("bad");
    b.movReg(2, 5);  // r5 uninitialized
    b.movReg(3, 7);  // r7 uninitialized
    b.mov(0, 2);
    b.exit();
    const CompileResult r = compileWithReport(b.build());
    EXPECT_FALSE(r.pipeline.has_value());
    EXPECT_GE(r.report.diags.errorCount(), 2u);
    for (const Diagnostic &d : r.report.diags.all())
        EXPECT_EQ(d.pass, "verify");
    ASSERT_FALSE(r.report.passes.empty());
    EXPECT_EQ(r.report.passes.back().name, "verify");
}

TEST(Passes, CompileWrapperRendersDiagnostics)
{
    ebpf::ProgramBuilder b("bad");
    b.movReg(0, 5);
    b.exit();
    try {
        (void)compile(b.build());
        FAIL() << "compile() accepted an unverifiable program";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("failed to compile"), std::string::npos);
        EXPECT_NE(what.find("error[verify]"), std::string::npos);
    }
}

// ------------------------------------------------------- equivalence ----

TEST(Passes, CompileAndCompileWithReportAgree)
{
    for (const AppSpec &spec : apps::paperApps()) {
        const Pipeline direct = compile(spec.prog);
        const CompileResult r = compileWithReport(spec.prog);
        ASSERT_TRUE(r.pipeline.has_value()) << spec.prog.name;
        EXPECT_EQ(direct.describe(), r.pipeline->describe())
            << spec.prog.name;
    }
}

// ------------------------------------------------------- no-fatal sweep --

TEST(Passes, GeneratorSweepNeverEscapesStructuredDiagnostics)
{
    // Acceptance criterion: 1000 generator seeds either compile or come
    // back as structured diagnostics — no fatal()/abort ever escapes
    // compileWithReport().
    unsigned compiled = 0;
    unsigned rejected = 0;
    for (uint64_t seed = 0; seed < 1000; ++seed) {
        const ebpf::Program prog = fuzz::generateProgram(seed);
        CompileResult r;
        ASSERT_NO_THROW(r = compileWithReport(prog)) << "seed " << seed;
        EXPECT_EQ(r.report.ok, r.pipeline.has_value()) << "seed " << seed;
        if (r.pipeline.has_value()) {
            ++compiled;
            EXPECT_FALSE(r.report.diags.hasErrors()) << "seed " << seed;
        } else {
            ++rejected;
            EXPECT_TRUE(r.report.diags.hasErrors()) << "seed " << seed;
            const Diagnostic *first = r.report.diags.firstError();
            ASSERT_NE(first, nullptr) << "seed " << seed;
            const bool known = findPass(first->pass) != nullptr ||
                               first->pass == "invariant";
            EXPECT_TRUE(known) << "seed " << seed << ": unknown pass '"
                               << first->pass << "'";
        }
    }
    // The generator emits verifier-accepted programs; most must compile.
    EXPECT_GT(compiled, rejected);
}

}  // namespace
}  // namespace ehdl::hdl
