/**
 * @file
 * Pipeline-simulator tests: timing (one packet per cycle, stage-count
 * latency), predication, input-queue losses, flush accounting and replay
 * correctness, WAR forwarding, and elastic-buffer restarts.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "common/bitops.hpp"
#include "common/logging.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "sim/pipe_sim.hpp"
#include "sim/traffic.hpp"

namespace ehdl::sim {
namespace {

using ebpf::MapSet;
using ebpf::XdpAction;

net::Packet
defaultPacket(uint64_t id, uint64_t arrival_ns = 0)
{
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    pkt.id = id;
    pkt.arrivalNs = arrival_ns;
    return pkt;
}

PipeSimConfig
bigQueue()
{
    PipeSimConfig config;
    config.inputQueueCapacity = 1u << 20;
    return config;
}

TEST(PipeSim, SinglePacketLatencyEqualsStages)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    ASSERT_TRUE(sim.offer(defaultPacket(1)));
    sim.drain();
    ASSERT_EQ(sim.outcomes().size(), 1u);
    const PacketOutcome &out = sim.outcomes()[0];
    EXPECT_EQ(out.action, XdpAction::Tx);
    // Latency = number of stages (one cycle each).
    EXPECT_EQ(out.exitCycle - out.entryCycle, pipe.numStages());
    EXPECT_NEAR(sim.avgLatencyNs(),
                4.0 * (pipe.numStages() + 1), 0.5);
}

TEST(PipeSim, BackToBackPacketsOnePerCycle)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    const int n = 200;
    for (int i = 1; i <= n; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i, 0)));
    sim.drain();
    ASSERT_EQ(sim.stats().completed, static_cast<uint64_t>(n));
    // n packets through an S-stage pipeline: ~n + S cycles.
    EXPECT_LE(sim.stats().cycles, n + pipe.numStages() + 8);
    // Throughput approaches one packet per cycle (250 Mpps at 250 MHz).
    EXPECT_GT(sim.stats().throughputMpps(250000000), 180.0);
}

TEST(PipeSim, RetirementOrderPreservesArrivalOrder)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeLeakyBucket().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    TrafficConfig tc;
    tc.numFlows = 3;  // heavy collisions -> many flushes
    TrafficGen gen(tc);
    for (int i = 0; i < 300; ++i)
        sim.offer(gen.next());
    sim.drain();
    ASSERT_EQ(sim.outcomes().size(), 300u);
    // Flush replay must never let a younger packet overtake an older one.
    for (size_t i = 1; i < sim.outcomes().size(); ++i)
        EXPECT_LT(sim.outcomes()[i - 1].id, sim.outcomes()[i].id);
    EXPECT_GT(sim.stats().flushEvents, 0u);
}

TEST(PipeSim, InputQueueOverflowCountsLosses)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSimConfig config;
    config.inputQueueCapacity = 8;
    PipeSim sim(pipe, maps, config);
    int accepted = 0;
    for (int i = 1; i <= 20; ++i)
        accepted += sim.offer(defaultPacket(i)) ? 1 : 0;
    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(sim.stats().lost, 12u);
    sim.drain();
    EXPECT_EQ(sim.stats().completed, 8u);
}

TEST(PipeSim, ThroughputIsZeroBeforeAnyCycle)
{
    // Guard the cycles==0 division edge in PipeSimStats::throughputMpps.
    PipeSimStats empty;
    EXPECT_EQ(empty.throughputMpps(250'000'000), 0.0);

    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    sim.offer(defaultPacket(1));  // queued, but no cycle has run yet
    EXPECT_EQ(sim.stats().cycles, 0u);
    EXPECT_EQ(sim.stats().throughputMpps(250'000'000), 0.0);
    sim.drain();
    EXPECT_GT(sim.stats().throughputMpps(250'000'000), 0.0);
}

TEST(PipeSim, QueueAcceptsExactlyCapacityBeforeLosing)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSimConfig config;
    config.inputQueueCapacity = 8;
    PipeSim sim(pipe, maps, config);
    // Offers 1..capacity all fit; the boundary packet must not be lost.
    for (unsigned i = 1; i <= 8; ++i) {
        EXPECT_TRUE(sim.offer(defaultPacket(i))) << "offer " << i;
        EXPECT_EQ(sim.stats().lost, 0u) << "offer " << i;
    }
    // The first past-capacity offer is the first loss.
    EXPECT_FALSE(sim.offer(defaultPacket(9)));
    EXPECT_EQ(sim.stats().lost, 1u);
    EXPECT_EQ(sim.stats().offered, 9u);
    EXPECT_EQ(sim.stats().accepted, 8u);
    sim.drain();
    EXPECT_EQ(sim.stats().completed, 8u);
}

TEST(PipeSim, ArrivalTimesGateInjection)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    // Second packet arrives 400 ns (100 cycles) after the first.
    sim.offer(defaultPacket(1, 0));
    sim.offer(defaultPacket(2, 400));
    sim.drain();
    ASSERT_EQ(sim.outcomes().size(), 2u);
    EXPECT_GE(sim.outcomes()[1].entryCycle, 100u);
}

TEST(PipeSim, PredicationMatchesControlFlow)
{
    // Non-IPv4 packets take the early-exit path.
    const hdl::Pipeline pipe =
        hdl::compile(apps::makeSimpleFirewall().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    net::PacketSpec arp;
    arp.etherType = net::kEthPArp;
    net::Packet pkt = net::PacketFactory::build(arp);
    pkt.id = 1;
    sim.offer(pkt);
    sim.drain();
    EXPECT_EQ(sim.outcomes()[0].action, XdpAction::Pass);
}

TEST(PipeSim, FlushEventsCountedAndResolved)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeLeakyBucket().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    // Same flow back to back: every packet collides with its predecessor.
    TrafficConfig tc;
    tc.numFlows = 1;
    TrafficGen gen(tc);
    for (int i = 0; i < 50; ++i)
        sim.offer(gen.next());
    sim.drain();
    EXPECT_EQ(sim.stats().completed, 50u);
    EXPECT_GE(sim.stats().flushEvents, 40u);
    EXPECT_GT(sim.stats().flushedPackets, 0u);
    EXPECT_GT(sim.stats().replayedStages, 0u);
    // Single-flow adversarial load costs real throughput (section 5.3).
    EXPECT_LT(sim.stats().throughputMpps(250000000), 100.0);
}

TEST(PipeSim, WarForwardingReadsOwnWrite)
{
    // Write then read the same value field: the parked write must forward.
    ebpf::Program prog = ebpf::assemble(R"(
        .map m hash 4 8 16
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r3 = 41
        r3 += 1
        *(u64 *)(r0 + 0) = r3
        r4 = *(u64 *)(r0 + 0)
        if r4 != 42 goto bad
        out:
        r0 = 2
        exit
        bad:
        r0 = 1
        exit
    )");
    const hdl::Pipeline pipe = hdl::compile(prog);
    ASSERT_GE(pipe.warBuffers.size(), 1u);
    MapSet maps(pipe.prog.maps);
    // Pre-create the entry so the hit path runs.
    ebpf::Vm vm(prog, maps);
    net::Packet seed = defaultPacket(1);
    vm.run(seed);  // miss -> exits via "out", creates nothing
    std::vector<uint8_t> key(4, 0);
    net::PacketSpec spec;
    net::Packet probe = net::PacketFactory::build(spec);
    storeLe<uint32_t>(key.data(),
                      loadLe<uint32_t>(probe.data() + 26));
    maps.at(0).hostUpdate(key, std::vector<uint8_t>(8, 0));

    PipeSim sim(pipe, maps, bigQueue());
    sim.offer(defaultPacket(2));
    sim.drain();
    EXPECT_EQ(sim.outcomes()[0].action, XdpAction::Pass);
}

TEST(PipeSim, ElasticBufferAvoidsAtomicReplay)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeElasticDemo().prog);
    ASSERT_EQ(pipe.elasticBuffers.size(), 1u);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    TrafficConfig tc;
    tc.numFlows = 2;
    TrafficGen gen(tc);
    const int n = 400;
    for (int i = 0; i < n; ++i)
        sim.offer(gen.next());
    sim.drain();
    EXPECT_GT(sim.stats().flushEvents, 0u);
    // The atomic global counter must equal the packet count exactly: a
    // replayed atomic would overshoot.
    std::vector<uint8_t> key(4, 0);
    auto value = maps.byName("gstats")->hostLookup(key);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(loadLe<uint64_t>(value->data()), static_cast<uint64_t>(n));
}

TEST(PipeSim, TrappingPacketAborts)
{
    // Undersized frame: the bounds check fails in hardware -> abort.
    ebpf::Program prog = ebpf::assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r0 = *(u8 *)(r6 + 60)
        r0 = 2
        exit
    )");
    const hdl::Pipeline pipe = hdl::compile(prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    net::Packet tiny(std::vector<uint8_t>(20, 0));
    tiny.id = 1;
    sim.offer(tiny);
    sim.drain();
    EXPECT_EQ(sim.outcomes()[0].action, XdpAction::Aborted);
    EXPECT_TRUE(sim.outcomes()[0].trapped);
}

TEST(PipeSim, StepByStepMatchesDrain)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    sim.offer(defaultPacket(1));
    for (int i = 0; i < 200 && sim.outcomes().empty(); ++i)
        sim.step();
    ASSERT_EQ(sim.outcomes().size(), 1u);
    EXPECT_EQ(sim.outcomes()[0].action, XdpAction::Tx);
}

TEST(PipeSim, RejectsEmptyPipeline)
{
    hdl::Pipeline pipe;
    MapSet maps;
    EXPECT_THROW(PipeSim(pipe, maps), FatalError);
}

TEST(PipeSim, ReloadPenaltyStallsInput)
{
    const hdl::Pipeline pipe = hdl::compile(apps::makeLeakyBucket().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    TrafficConfig tc;
    tc.numFlows = 1;
    TrafficGen gen(tc);
    for (int i = 0; i < 30; ++i)
        sim.offer(gen.next());
    sim.drain();
    EXPECT_GT(sim.stats().stallCycles, 0u);
}

TEST(PipeSim, IdleGapsFastForwardWithExactCycleAccounting)
{
    // Sparse arrivals: the simulator may skip idle cycles internally, but
    // the cycle counter must still advance as if every cycle ran. With a
    // 1 Mpps arrival process (1000 ns = 250 cycles apart at 250 MHz) the
    // final cycle count is dominated by the last arrival's timestamp.
    const hdl::Pipeline pipe = hdl::compile(apps::makeToyCounter().prog);
    MapSet maps(pipe.prog.maps);
    PipeSim sim(pipe, maps, bigQueue());
    const int n = 100;
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(sim.offer(defaultPacket(i + 1, i * 1000ULL)));
    sim.drain();
    ASSERT_EQ(sim.outcomes().size(), static_cast<size_t>(n));
    // Each packet enters no earlier than its arrival time allows...
    for (int i = 0; i < n; ++i)
        EXPECT_GE(sim.outcomes()[i].entryCycle, i * 250u);
    // ...and the run ends within one pipeline depth of the last arrival.
    EXPECT_GE(sim.stats().cycles, (n - 1) * 250u);
    EXPECT_LE(sim.stats().cycles, (n - 1) * 250u + pipe.numStages() + 8);
    EXPECT_EQ(sim.stats().completed, static_cast<uint64_t>(n));
}

TEST(PipeSim, ReusedSimulatorMatchesFreshAcrossDrains)
{
    // Offer/drain in bursts reuses pooled in-flight state; results must
    // be identical to a fresh simulator fed the same packets in one go.
    const apps::AppSpec spec = apps::makeLeakyBucket();
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    TrafficConfig tc;
    tc.numFlows = 4;
    tc.seed = 5;
    TrafficGen gen(tc);
    std::vector<net::Packet> packets;
    for (int i = 0; i < 600; ++i)
        packets.push_back(gen.next());

    MapSet burst_maps(spec.prog.maps);
    spec.seedMaps(burst_maps);
    PipeSim burst(pipe, burst_maps, bigQueue());
    for (size_t i = 0; i < packets.size(); ++i) {
        ASSERT_TRUE(burst.offer(packets[i]));
        if (i % 50 == 49)
            burst.drain();
    }
    burst.drain();

    MapSet once_maps(spec.prog.maps);
    spec.seedMaps(once_maps);
    PipeSim once(pipe, once_maps, bigQueue());
    for (const net::Packet &pkt : packets)
        ASSERT_TRUE(once.offer(pkt));
    once.drain();

    ASSERT_EQ(burst.outcomes().size(), once.outcomes().size());
    for (size_t i = 0; i < once.outcomes().size(); ++i) {
        EXPECT_EQ(burst.outcomes()[i].id, once.outcomes()[i].id);
        EXPECT_EQ(burst.outcomes()[i].action, once.outcomes()[i].action);
        EXPECT_EQ(burst.outcomes()[i].bytes, once.outcomes()[i].bytes);
    }
    EXPECT_TRUE(MapSet::equal(burst_maps, once_maps));
}

}  // namespace
}  // namespace ehdl::sim
