/**
 * @file
 * Resource-model tests: the paper's published envelope (6.5%-13.3% of the
 * Alveo U50 for the five applications, figure 10), monotonicity
 * properties, and the pruning study of section 5.4.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "hdl/compiler.hpp"
#include "hdl/resources.hpp"

namespace ehdl::hdl {
namespace {

TEST(Resources, PaperAppsLandInPublishedRange)
{
    // Section 5: "the generated pipelines use only 6.5%-13.3% of the FPGA
    // hardware resources". Allow a little slack around the band.
    for (const apps::AppSpec &spec : apps::paperApps()) {
        const Pipeline pipe = compile(spec.prog);
        const ResourceReport report = estimateResources(pipe);
        EXPECT_GE(report.lutFrac, 0.055) << spec.prog.name;
        EXPECT_LE(report.lutFrac, 0.14) << spec.prog.name;
        EXPECT_GT(report.ffFrac, 0.02) << spec.prog.name;
        EXPECT_LT(report.ffFrac, 0.12) << spec.prog.name;
        EXPECT_GT(report.bramFrac, 0.05) << spec.prog.name;
        EXPECT_LT(report.bramFrac, 0.25) << spec.prog.name;
    }
}

TEST(Resources, ShellIncludedByDefault)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const ResourceReport with = estimateResources(pipe, true);
    const ResourceReport without = estimateResources(pipe, false);
    EXPECT_EQ(without.shell.luts, 0);
    EXPECT_NEAR(with.total.luts - without.total.luts, kShellLuts, 1e-6);
    EXPECT_GT(with.lutFrac, without.lutFrac);
}

TEST(Resources, PruningSavesSubstantialArea)
{
    // Section 5.4: disabling pruning costs +46% LUT, +66% FF, +123% BRAM
    // on the toy pipeline (shell excluded). Check direction + magnitude.
    const apps::AppSpec toy = apps::makeToyCounter();
    PipelineOptions off;
    off.enablePruning = false;
    const ResourceReport pruned =
        estimateResources(compile(toy.prog), false);
    const ResourceReport unpruned =
        estimateResources(compile(toy.prog, off), false);
    // Our model charges all pipeline state to per-stage registers and
    // muxes, so the pruning benefit is larger than the paper's reported
    // ratios (see EXPERIMENTS.md); assert direction and sanity here.
    const double lut_over = unpruned.pipeline.luts / pruned.pipeline.luts;
    const double ff_over = unpruned.pipeline.ffs / pruned.pipeline.ffs;
    EXPECT_GT(lut_over, 1.25);
    EXPECT_LT(lut_over, 10.0);
    EXPECT_GT(ff_over, 1.4);
    EXPECT_LT(ff_over, 10.0);
}

TEST(Resources, MoreStagesCostMore)
{
    const ResourceReport small =
        estimateResources(compile(apps::makeToyCounter().prog), false);
    const ResourceReport big =
        estimateResources(compile(apps::makeDnat().prog), false);
    EXPECT_GT(big.pipeline.luts, small.pipeline.luts);
    EXPECT_GT(big.pipeline.ffs, small.pipeline.ffs);
}

TEST(Resources, BiggerMapsCostMoreBram)
{
    auto make = [](uint32_t entries) {
        apps::AppSpec spec = apps::makeSimpleFirewall();
        spec.prog.maps[0].maxEntries = entries;
        return estimateResources(compile(spec.prog), false).pipeline.brams;
    };
    EXPECT_GT(make(16384), make(1024));
}

TEST(Resources, WiderFramesCostMoreFfs)
{
    const apps::AppSpec toy = apps::makeToyCounter();
    PipelineOptions narrow, wide;
    narrow.frameBytes = 32;
    wide.frameBytes = 64;
    const double ff32 =
        estimateResources(compile(toy.prog, narrow), false).pipeline.ffs;
    const double ff64 =
        estimateResources(compile(toy.prog, wide), false).pipeline.ffs;
    EXPECT_GT(ff64, ff32);
}

TEST(Resources, HazardMachineryHasACost)
{
    // leaky_bucket (flush blocks + WAR buffer) vs a similar-sized program
    // without hazards would differ; simply check the components add in.
    const Pipeline pipe = compile(apps::makeLeakyBucket().prog);
    ASSERT_FALSE(pipe.flushBlocks.empty());
    const ResourceReport report = estimateResources(pipe, false);
    EXPECT_GT(report.pipeline.luts, 0);
    // Remove hazard plans and re-price: must be cheaper.
    Pipeline stripped = compile(apps::makeLeakyBucket().prog);
    stripped.flushBlocks.clear();
    stripped.warBuffers.clear();
    const ResourceReport lean = estimateResources(stripped, false);
    EXPECT_LT(lean.pipeline.luts, report.pipeline.luts);
    EXPECT_LT(lean.pipeline.ffs, report.pipeline.ffs);
}

TEST(Resources, FractionsConsistent)
{
    const Pipeline pipe = compile(apps::makeRouterIpv4().prog);
    const ResourceReport report = estimateResources(pipe);
    EXPECT_NEAR(report.lutFrac, report.total.luts / kU50Luts, 1e-12);
    EXPECT_NEAR(report.ffFrac, report.total.ffs / kU50Ffs, 1e-12);
    EXPECT_NEAR(report.bramFrac, report.total.brams / kU50Brams, 1e-12);
    EXPECT_NEAR(report.total.luts,
                report.pipeline.luts + report.shell.luts, 1e-9);
}

}  // namespace
}  // namespace ehdl::hdl
