/**
 * @file
 * ILP scheduler tests: dependency preservation (property-tested over
 * random programs), fusion pairing, lane caps for the hXDP model, map
 * port budgets, and the ILP statistics of paper table 5.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/effects.hpp"
#include "analysis/schedule.hpp"
#include "apps/apps.hpp"
#include "common/rng.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/verifier.hpp"

namespace ehdl::analysis {
namespace {

using ebpf::assemble;
using ebpf::Program;

struct Prepared
{
    Program prog;
    ebpf::AbsIntResult analysis;
    Cfg cfg;
};

Prepared
prepare(Program prog)
{
    Prepared p;
    ebpf::VerifyResult vr = ebpf::verify(prog);
    EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors[0]);
    p.prog = std::move(prog);
    p.analysis = std::move(vr.analysis);
    p.cfg = Cfg::build(p.prog);
    return p;
}

/** Row index of each scheduled instruction within its block. */
std::map<size_t, std::pair<size_t, size_t>>
rowOf(const Schedule &sched)
{
    std::map<size_t, std::pair<size_t, size_t>> out;
    for (size_t b = 0; b < sched.blocks.size(); ++b)
        for (size_t r = 0; r < sched.blocks[b].rows.size(); ++r)
            for (size_t pc : sched.blocks[b].rows[r].ops)
                out[pc] = {b, r};
    return out;
}

TEST(Schedule, IndependentOpsShareARow)
{
    Prepared p = prepare(assemble(R"(
        r1 = 1
        r2 = 2
        r3 = 3
        r0 = 0
        exit
    )"));
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
    // All four moves are independent -> one row (plus exit which orders
    // only against memory, so it can share too but uses r0).
    EXPECT_GE(sched.maxIlp, 4u);
}

TEST(Schedule, DependentChainStaysSequential)
{
    Prepared p = prepare(assemble(R"(
        r1 = 1
        r1 += 1
        r1 *= 2
        r1 *= 3
        r0 = r1
        exit
    )"));
    ScheduleOptions opts;
    opts.enableFusion = false;
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis, opts);
    auto rows = rowOf(sched);
    EXPECT_LT(rows[0].second, rows[1].second);
    EXPECT_LT(rows[1].second, rows[2].second);
    EXPECT_LT(rows[2].second, rows[3].second);
}

TEST(Schedule, FusionPairsAdjacentAluChain)
{
    Prepared p = prepare(assemble(R"(
        r1 = 4
        r2 = r10
        r2 += -4
        r0 = 0
        exit
    )"));
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
    // "r2 = r10; r2 += -4" is the paper's three-operand fusion example.
    EXPECT_GE(sched.fusion.pairCount(), 1u);
    ASSERT_TRUE(sched.fusion.followerOf.count(1));
    EXPECT_EQ(sched.fusion.followerOf.at(1), 2u);
    // Fused ops share a row.
    auto rows = rowOf(sched);
    EXPECT_EQ(rows[1], rows[2]);
}

TEST(Schedule, FusionDisabledSplitsThem)
{
    Prepared p = prepare(assemble(R"(
        r2 = r10
        r2 += -4
        r0 = 0
        exit
    )"));
    ScheduleOptions opts;
    opts.enableFusion = false;
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis, opts);
    EXPECT_EQ(sched.fusion.pairCount(), 0u);
    auto rows = rowOf(sched);
    EXPECT_NE(rows[0].second, rows[1].second);
}

TEST(Schedule, NoFusionOfMultiply)
{
    Prepared p = prepare(assemble(R"(
        r1 = 3
        r1 *= 7
        r0 = 0
        exit
    )"));
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
    EXPECT_FALSE(sched.fusion.isFollower(1));
}

TEST(Schedule, IlpDisabledIsSequential)
{
    Prepared p = prepare(assemble(R"(
        r1 = 1
        r2 = 2
        r3 = 3
        r0 = 0
        exit
    )"));
    ScheduleOptions opts;
    opts.enableIlp = false;
    opts.enableFusion = false;
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis, opts);
    EXPECT_EQ(sched.maxIlp, 1u);
    EXPECT_EQ(sched.totalRows, p.prog.insns.size());
}

TEST(Schedule, LaneCapForVliwModel)
{
    Prepared p = prepare(assemble(R"(
        r1 = 1
        r2 = 2
        r3 = 3
        r4 = 4
        r5 = 5
        r0 = 0
        exit
    )"));
    ScheduleOptions opts;
    opts.maxOpsPerRow = 2;
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis, opts);
    EXPECT_LE(sched.maxIlp, 2u);
}

TEST(Schedule, ExitComesAfterStores)
{
    Prepared p = prepare(assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r2 = 7
        *(u8 *)(r6 + 0) = r2
        r0 = 2
        exit
    )"));
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
    auto rows = rowOf(sched);
    EXPECT_LT(rows[2].second, rows[4].second);  // store before exit
}

TEST(Schedule, MapPortBudgetRespected)
{
    // Two lookups of the same map can share a row (2 ports), a third
    // cannot.
    Prepared p = prepare(assemble(R"(
        .map m array 4 8 4
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        *(u32 *)(r10 - 8) = r3
        *(u32 *)(r10 - 12) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        r6 = r0
        r1 = map[m]
        r2 = r10
        r2 += -8
        call 1
        r7 = r0
        r1 = map[m]
        r2 = r10
        r2 += -12
        call 1
        r0 = 2
        exit
    )"));
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
    std::map<size_t, unsigned> lookups_per_row;
    auto rows = rowOf(sched);
    for (size_t pc = 0; pc < p.prog.size(); ++pc)
        if (p.prog.insns[pc].isCall())
            lookups_per_row[rows[pc].second]++;
    for (const auto &[row, count] : lookups_per_row)
        EXPECT_LE(count, 2u);
}

TEST(Schedule, PaperAppsIlpStatistics)
{
    // Paper table 5: max ILP in [3, 15], average in roughly [1.4, 2.4].
    for (const apps::AppSpec &spec : apps::paperApps()) {
        Prepared p = prepare(spec.prog);
        const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis);
        EXPECT_GE(sched.maxIlp, 2u) << spec.prog.name;
        EXPECT_LE(sched.maxIlp, 16u) << spec.prog.name;
        EXPECT_GE(sched.avgIlp, 1.2) << spec.prog.name;
        EXPECT_LE(sched.avgIlp, 2.6) << spec.prog.name;
        EXPECT_LT(sched.totalRows, spec.prog.size()) << spec.prog.name;
    }
}

/** Property: every dependence pair lands in increasing rows. */
class ScheduleDepsTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ScheduleDepsTest, DependenciesRespectRows)
{
    Rng rng(GetParam());
    ebpf::ProgramBuilder b("rand");
    const unsigned n = 8 + rng.below(24);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned dst = 1 + rng.below(8);
        switch (rng.below(4)) {
          case 0: b.mov(dst, static_cast<int32_t>(rng.next())); break;
          case 1: b.aluReg(ebpf::AluOp::Add, dst, 1 + rng.below(8)); break;
          case 2: b.stx(ebpf::MemSize::DW, 10,
                        -8 * static_cast<int16_t>(1 + rng.below(8)), dst);
            break;
          case 3: b.ldx(ebpf::MemSize::DW, dst, 10,
                        -8 * static_cast<int16_t>(1 + rng.below(8)));
            break;
        }
    }
    b.mov(0, 0);
    b.exit();
    Program prog = b.build();
    // Initialize r1-r8 first so verification passes.
    ebpf::ProgramBuilder init("init");
    for (unsigned r = 1; r <= 8; ++r)
        init.mov(r, r);
    for (unsigned s = 1; s <= 8; ++s)
        init.stx(ebpf::MemSize::DW, 10, -8 * static_cast<int16_t>(s), 1);
    Program full;
    full.name = "rand";
    for (const auto &insn : init.build().insns)
        full.insns.push_back(insn);
    for (const auto &insn : prog.insns)
        full.insns.push_back(insn);

    Prepared p = prepare(full);
    ScheduleOptions opts;
    opts.enableFusion = rng.chance(0.5);
    const Schedule sched = buildSchedule(p.prog, p.cfg, p.analysis, opts);
    auto rows = rowOf(sched);

    for (size_t i = 0; i < p.prog.size(); ++i) {
        for (size_t j = i + 1; j < p.prog.size(); ++j) {
            if (rows[i].first != rows[j].first)
                continue;  // different blocks
            const Effects fi = insnEffects(p.prog, i, p.analysis);
            const Effects fj = insnEffects(p.prog, j, p.analysis);
            if (!dependsOn(fi, fj))
                continue;
            const bool fused = sched.fusion.leaderOf.count(j) &&
                               sched.fusion.leaderOf.at(j) == i;
            if (fused)
                EXPECT_EQ(rows[i].second, rows[j].second);
            else
                EXPECT_LT(rows[i].second, rows[j].second)
                    << "dep " << i << " -> " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleDepsTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace ehdl::analysis
