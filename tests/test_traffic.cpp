/**
 * @file
 * Traffic generator tests: determinism, line-rate pacing, flow
 * distributions, packet-size models and the CAIDA/MAWI trace profiles.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hpp"
#include "sim/traffic.hpp"

namespace ehdl::sim {
namespace {

TEST(Traffic, DeterministicForSeed)
{
    TrafficConfig config;
    config.seed = 99;
    TrafficGen a(config), b(config);
    for (int i = 0; i < 50; ++i) {
        net::Packet pa = a.next();
        net::Packet pb = b.next();
        EXPECT_EQ(pa.bytes(), pb.bytes());
        EXPECT_EQ(pa.arrivalNs, pb.arrivalNs);
    }
}

TEST(Traffic, DeterministicAcrossAllStochasticModes)
{
    // Two generators from one seed must emit byte-identical streams with
    // identical timestamps even when every random feature is active at
    // once (zipf flow choice, size distribution, direction flips). This
    // is what makes fuzz workloads replayable from a recorded seed.
    TrafficConfig config;
    config.seed = 4242;
    config.numFlows = 64;
    config.zipfS = 1.1;
    config.packetLen = 0;  // engage the size distribution
    config.meanPacketLen = 300.0;
    config.reverseFraction = 0.3;
    config.lineRateGbps = 40.0;
    TrafficGen a(config), b(config);
    for (int i = 0; i < 500; ++i) {
        net::Packet pa = a.next();
        net::Packet pb = b.next();
        ASSERT_EQ(pa.bytes(), pb.bytes()) << "packet " << i;
        ASSERT_EQ(pa.arrivalNs, pb.arrivalNs) << "packet " << i;
        ASSERT_EQ(pa.id, pb.id) << "packet " << i;
    }
    EXPECT_EQ(a.nowNs(), b.nowNs());

    // ...and a different seed must not reproduce the same stream.
    config.seed = 4243;
    TrafficGen c(config);
    bool differs = false;
    TrafficGen a2(TrafficConfig{config.numFlows, config.zipfS, 0, 300.0,
                                40.0, net::kIpProtoUdp, 0.3, 4242});
    for (int i = 0; i < 100 && !differs; ++i)
        differs = c.next().bytes() != a2.next().bytes();
    EXPECT_TRUE(differs);
}

TEST(Traffic, LineRatePacing64B)
{
    TrafficConfig config;
    config.packetLen = 64;
    config.lineRateGbps = 100.0;
    TrafficGen gen(config);
    const int n = 1000;
    uint64_t last = 0;
    for (int i = 0; i < n; ++i)
        last = gen.next().arrivalNs;
    // 64B + 20B overhead at 100 Gbps = 6.72 ns/packet -> 148.8 Mpps.
    EXPECT_NEAR(static_cast<double>(last) / n, 6.72, 0.05);
}

TEST(Traffic, SlowerRateSpacesPackets)
{
    TrafficConfig config;
    config.lineRateGbps = 10.0;
    TrafficGen gen(config);
    gen.next();
    const uint64_t t1 = gen.nowNs();
    gen.next();
    EXPECT_NEAR(static_cast<double>(gen.nowNs() - t1), 67.2, 1.0);
}

TEST(Traffic, UniformFlowsCoverTheSpace)
{
    TrafficConfig config;
    config.numFlows = 10;
    TrafficGen gen(config);
    std::map<uint32_t, int> sources;
    for (int i = 0; i < 1000; ++i) {
        net::Packet pkt = gen.next();
        net::FlowKey flow;
        ASSERT_TRUE(net::PacketFactory::parseFlow(pkt, flow));
        sources[flow.srcIp]++;
    }
    EXPECT_EQ(sources.size(), 10u);
    for (const auto &[ip, count] : sources)
        EXPECT_GT(count, 50);  // roughly uniform
}

TEST(Traffic, ZipfSkewsTowardFewFlows)
{
    TrafficConfig config;
    config.numFlows = 1000;
    config.zipfS = 1.0;
    TrafficGen gen(config);
    std::map<uint32_t, int> sources;
    for (int i = 0; i < 5000; ++i) {
        net::FlowKey flow;
        net::Packet pkt = gen.next();
        ASSERT_TRUE(net::PacketFactory::parseFlow(pkt, flow));
        sources[flow.srcIp]++;
    }
    // The most popular flow dominates under Zipf.
    int max_count = 0;
    for (const auto &[ip, count] : sources)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count, 5000 / 20);
}

TEST(Traffic, FlowOfIsStable)
{
    TrafficConfig config;
    TrafficGen gen(config);
    EXPECT_EQ(gen.flowOf(7), gen.flowOf(7));
    EXPECT_NE(gen.flowOf(7).srcIp, gen.flowOf(8).srcIp);
    EXPECT_EQ(gen.flowOf(3).proto, net::kIpProtoUdp);
}

TEST(Traffic, ReverseFractionFlipsDirections)
{
    TrafficConfig config;
    config.numFlows = 4;
    config.reverseFraction = 0.5;
    config.seed = 3;
    TrafficGen gen(config);
    int forward = 0, reverse = 0;
    for (int i = 0; i < 1000; ++i) {
        net::FlowKey flow;
        net::Packet pkt = gen.next();
        ASSERT_TRUE(net::PacketFactory::parseFlow(pkt, flow));
        // Forward flows source from 10/8 in our generator.
        if ((flow.srcIp >> 24) == 0x0a)
            ++forward;
        else
            ++reverse;
    }
    EXPECT_GT(forward, 300);
    EXPECT_GT(reverse, 300);
}

TEST(Traffic, SizeDistributionHitsMean)
{
    TrafficConfig config;
    config.packetLen = 0;
    config.meanPacketLen = 411.0;
    TrafficGen gen(config);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += gen.next().size();
    EXPECT_NEAR(total / n, 411.0, 30.0);
}

TEST(Traffic, TraceProfilesMatchPaperStats)
{
    const TraceProfile caida = caidaProfile();
    EXPECT_EQ(caida.flows, 184305u);
    EXPECT_DOUBLE_EQ(caida.meanPacketLen, 411.0);
    const TraceProfile mawi = mawiProfile();
    EXPECT_EQ(mawi.flows, 163697u);
    EXPECT_DOUBLE_EQ(mawi.meanPacketLen, 573.0);

    TrafficGen replay = makeTraceReplay(caida, 100.0);
    double total = 0;
    for (int i = 0; i < 5000; ++i)
        total += replay.next().size();
    EXPECT_NEAR(total / 5000, 411.0, 40.0);
}

TEST(Traffic, PacketIdsAreSequential)
{
    TrafficConfig config;
    TrafficGen gen(config);
    EXPECT_EQ(gen.next().id, 1u);
    EXPECT_EQ(gen.next().id, 2u);
    EXPECT_EQ(gen.generated(), 2u);
}

TEST(Traffic, RejectsBadConfig)
{
    TrafficConfig none;
    none.numFlows = 0;
    EXPECT_THROW(TrafficGen{none}, FatalError);
    TrafficConfig rate;
    rate.lineRateGbps = 0;
    EXPECT_THROW(TrafficGen{rate}, FatalError);
}

}  // namespace
}  // namespace ehdl::sim
