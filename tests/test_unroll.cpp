/**
 * @file
 * Bounded-loop unrolling tests: DAG production, semantic preservation
 * (VM equivalence between the looped and unrolled programs), trip-bound
 * abort behaviour, and nested loops.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/unroll.hpp"
#include "common/logging.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/vm.hpp"
#include "net/headers.hpp"

namespace ehdl::analysis {
namespace {

using ebpf::assemble;
using ebpf::ExecResult;
using ebpf::MapSet;
using ebpf::Program;
using ebpf::Vm;
using ebpf::XdpAction;

ExecResult
run(const Program &prog)
{
    MapSet maps(prog.maps);
    Vm vm(prog, maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    return vm.run(pkt);
}

const char *kCountdownLoop = R"(
    r1 = 5
    r2 = 0
    top:
    r2 += 10
    r1 -= 1
    if r1 != 0 goto top
    r0 = r2
    exit
)";

TEST(Unroll, ProducesDag)
{
    Program prog = assemble(kCountdownLoop);
    EXPECT_FALSE(Cfg::build(prog).isDag());
    const UnrollResult result = unrollLoops(prog, 8);
    EXPECT_EQ(result.loopsUnrolled, 1u);
    EXPECT_TRUE(Cfg::build(result.prog).isDag());
}

TEST(Unroll, PreservesSemanticsWhenBoundSuffices)
{
    Program prog = assemble(kCountdownLoop);
    const Program unrolled = unrollLoops(prog, 8).prog;
    const ExecResult orig = run(prog);
    const ExecResult flat = run(unrolled);
    EXPECT_FALSE(orig.trapped);
    EXPECT_FALSE(flat.trapped);
    // r2 accumulates 5 * 10 = 50; action value 50 clamps to Aborted in
    // both, so compare the exit path by instruction behaviour instead:
    EXPECT_EQ(orig.action, flat.action);
}

TEST(Unroll, ResultValueMatches)
{
    // Loop computing 3 iterations of r2 += 1; exit code = r2 = 3 (TX).
    const char *text = R"(
        r1 = 3
        r2 = 0
        top:
        r2 += 1
        r1 -= 1
        if r1 != 0 goto top
        r0 = r2
        exit
    )";
    Program prog = assemble(text);
    const Program unrolled = unrollLoops(prog, 4).prog;
    EXPECT_EQ(run(unrolled).action, XdpAction::Tx);
}

TEST(Unroll, AbortsWhenTripsExceedBound)
{
    const char *text = R"(
        r1 = 10
        top:
        r1 -= 1
        if r1 != 0 goto top
        r0 = 2
        exit
    )";
    Program prog = assemble(text);
    const Program unrolled = unrollLoops(prog, 4).prog;
    const ExecResult result = run(unrolled);
    EXPECT_EQ(result.action, XdpAction::Aborted);  // bound too small
    const Program enough = unrollLoops(prog, 16).prog;
    EXPECT_EQ(run(enough).action, XdpAction::Pass);
}

TEST(Unroll, NestedLoops)
{
    const char *text = R"(
        r1 = 2
        r3 = 0
        outer:
        r2 = 3
        inner:
        r3 += 1
        r2 -= 1
        if r2 != 0 goto inner
        r1 -= 1
        if r1 != 0 goto outer
        r0 = 2
        exit
    )";
    Program prog = assemble(text);
    const UnrollResult result = unrollLoops(prog, 4);
    EXPECT_EQ(result.loopsUnrolled, 2u);
    EXPECT_TRUE(Cfg::build(result.prog).isDag());
    EXPECT_EQ(run(result.prog).action, XdpAction::Pass);
}

TEST(Unroll, LoopAtProgramStart)
{
    const char *text = R"(
        top:
        r1 = 1
        if r1 == 0 goto top
        r0 = 2
        exit
    )";
    Program prog = assemble(text);
    const Program unrolled = unrollLoops(prog, 4).prog;
    EXPECT_TRUE(Cfg::build(unrolled).isDag());
    EXPECT_EQ(run(unrolled).action, XdpAction::Pass);
}

TEST(Unroll, NoLoopIsIdentity)
{
    Program prog = assemble("r0 = 2\nexit\n");
    const UnrollResult result = unrollLoops(prog, 8);
    EXPECT_EQ(result.loopsUnrolled, 0u);
    EXPECT_EQ(result.prog.insns.size(), prog.insns.size());
}

TEST(Unroll, ExternalForwardJumpsSurvive)
{
    const char *text = R"(
        r1 = 2
        r4 = 7
        if r4 == 7 goto after
        top:
        r1 -= 1
        if r1 != 0 goto top
        after:
        r0 = 2
        exit
    )";
    Program prog = assemble(text);
    const Program unrolled = unrollLoops(prog, 4).prog;
    EXPECT_TRUE(Cfg::build(unrolled).isDag());
    EXPECT_EQ(run(unrolled).action, XdpAction::Pass);
}

TEST(Unroll, RejectsJumpIntoLoopBody)
{
    // Jump into the middle of the loop body (irreducible).
    ebpf::ProgramBuilder b("irr");
    b.mov(1, 2);                            // 0
    b.jcond(ebpf::JmpOp::Jeq, 1, 9, "mid"); // 1
    b.label("top");                         //
    b.alu(ebpf::AluOp::Add, 1, 0);          // 2 (loop head)
    b.label("mid");
    b.alu(ebpf::AluOp::Sub, 1, 1);          // 3
    b.jcond(ebpf::JmpOp::Jne, 1, 0, "top"); // 4 (back edge)
    b.mov(0, 2);                            // 5
    b.exit();                               // 6
    EXPECT_THROW(unrollLoops(b.build(), 4), FatalError);
}

TEST(Unroll, RejectsZeroTrips)
{
    Program prog = assemble(kCountdownLoop);
    EXPECT_THROW(unrollLoops(prog, 0), FatalError);
}

}  // namespace
}  // namespace ehdl::analysis
