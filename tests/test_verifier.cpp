/**
 * @file
 * Verifier and abstract-interpretation tests: rejection of unsafe
 * programs, memory-area labeling (paper section 3.1), null-check
 * refinement, and the key/value constness analysis that distinguishes
 * global state from flow state (section 4.1).
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/verifier.hpp"

namespace ehdl::ebpf {
namespace {

VerifyResult
verifyText(const std::string &text)
{
    return verify(assemble(text));
}

bool
hasError(const VerifyResult &vr, const std::string &needle)
{
    for (const std::string &e : vr.errors)
        if (e.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(Verifier, AcceptsMinimalProgram)
{
    const VerifyResult vr = verifyText("r0 = 0\nexit\n");
    EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors[0]);
}

TEST(Verifier, RejectsEmptyProgram)
{
    Program prog;
    EXPECT_FALSE(verify(prog).ok);
}

TEST(Verifier, RejectsMissingExit)
{
    ProgramBuilder b("noexit");
    b.mov(0, 0);
    Program prog = b.build();
    const VerifyResult vr = verify(prog);
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "no exit"));
}

TEST(Verifier, RejectsFallOffEnd)
{
    // Conditional jump whose fallthrough leaves the program.
    ProgramBuilder b("fall");
    b.mov(1, 0);
    b.label("end");
    b.jcond(JmpOp::Jeq, 1, 0, "end2");
    b.label("end2");
    b.exit();
    Program prog = b.build();
    // r0 uninitialized at exit is the detected problem here.
    const VerifyResult vr = verify(prog);
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "uninitialized r0"));
}

TEST(Verifier, RejectsUninitializedRegisterUse)
{
    const VerifyResult vr = verifyText("r0 = r5\nexit\n");
    EXPECT_FALSE(vr.ok);
}

TEST(Verifier, RejectsWriteToR10)
{
    ProgramBuilder b("r10");
    b.mov(10, 0);
    b.mov(0, 0);
    b.exit();
    const VerifyResult vr = verify(b.build());
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "read-only R10"));
}

TEST(Verifier, RejectsBackwardJumpByDefault)
{
    const std::string loop = R"(
        r1 = 3
        top:
        r1 -= 1
        if r1 != 0 goto top
        r0 = 0
        exit
    )";
    const VerifyResult strict = verify(assemble(loop));
    EXPECT_FALSE(strict.ok);
    EXPECT_TRUE(hasError(strict, "backward jump"));
    const VerifyResult relaxed = verify(assemble(loop), true);
    EXPECT_TRUE(relaxed.ok);
    EXPECT_TRUE(relaxed.hasBackwardJumps);
}

TEST(Verifier, RejectsUnknownHelper)
{
    const VerifyResult vr = verifyText("call 9999\nr0 = 0\nexit\n");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "helper"));
}

TEST(Verifier, RejectsLoadThroughScalar)
{
    const VerifyResult vr =
        verifyText("r1 = 5\nr2 = *(u32 *)(r1 + 0)\nr0 = 0\nexit\n");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "non-pointer"));
}

TEST(Verifier, RejectsStoreToCtx)
{
    const VerifyResult vr = verifyText("*(u32 *)(r1 + 0) = 5\nr0 = 0\nexit\n");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "read-only xdp_md"));
}

TEST(Verifier, RejectsStackOutOfBounds)
{
    const VerifyResult vr =
        verifyText("r3 = 0\n*(u32 *)(r10 - 516) = r3\nr0 = 0\nexit\n");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "out of bounds"));
}

TEST(Verifier, RejectsNullMapValueDeref)
{
    const VerifyResult vr = verifyText(R"(
        .map m hash 4 8 4
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        r2 = *(u64 *)(r0 + 0)
        r0 = 0
        exit
    )");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "null check"));
}

TEST(Verifier, NullCheckRefinementAcceptsGuardedDeref)
{
    const VerifyResult vr = verifyText(R"(
        .map m hash 4 8 4
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r2 = *(u64 *)(r0 + 0)
        out:
        r0 = 0
        exit
    )");
    EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors[0]);
}

TEST(Verifier, JneRefinementAlsoWorks)
{
    const VerifyResult vr = verifyText(R"(
        .map m hash 4 8 4
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 != 0 goto hit
        r0 = 1
        exit
        hit:
        r2 = *(u64 *)(r0 + 0)
        r0 = 0
        exit
    )");
    EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors[0]);
}

TEST(Verifier, RejectsPointerPointerAdd)
{
    const VerifyResult vr = verifyText(R"(
        r2 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r1 + 4)
        r2 += r3
        r0 = 0
        exit
    )");
    EXPECT_FALSE(vr.ok);
}

TEST(Verifier, RejectsCallWithUninitializedArgs)
{
    // bpf_map_lookup_elem takes r1, r2; r2 never set.
    const VerifyResult vr = verifyText(R"(
        .map m hash 4 8 4
        r1 = map[m]
        call 1
        r0 = 0
        exit
    )");
    EXPECT_FALSE(vr.ok);
}

TEST(Verifier, RejectsLookupOnNonMap)
{
    const VerifyResult vr = verifyText(R"(
        r1 = 5
        r2 = r10
        r2 += -4
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        call 1
        r0 = 0
        exit
    )");
    EXPECT_FALSE(vr.ok);
    EXPECT_TRUE(hasError(vr, "not a map handle"));
}

TEST(Labeling, IdentifiesMemoryRegions)
{
    Program prog = assemble(R"(
        .map m array 4 8 1
        r2 = *(u32 *)(r1 + 4)
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u8 *)(r6 + 12)
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r4 = *(u64 *)(r0 + 0)
        out:
        r0 = 0
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors[0]);
    const auto &labels = vr.analysis.labels;
    EXPECT_EQ(labels[0].region, MemRegion::Ctx);
    EXPECT_EQ(labels[1].region, MemRegion::Ctx);
    EXPECT_EQ(labels[2].region, MemRegion::Packet);
    EXPECT_TRUE(labels[2].offKnown);
    EXPECT_EQ(labels[2].staticOff, 12);
    EXPECT_EQ(labels[3].region, MemRegion::Stack);
    EXPECT_EQ(labels[3].staticOff, 512 - 4);
    EXPECT_EQ(labels[9].region, MemRegion::Map);
    EXPECT_EQ(labels[9].mapId, 0);
}

TEST(Labeling, DerivedPacketPointersKeepOffsets)
{
    Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r6 += 14
        r3 = *(u16 *)(r6 + 2)
        r0 = 0
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok);
    EXPECT_EQ(vr.analysis.labels[2].region, MemRegion::Packet);
    EXPECT_TRUE(vr.analysis.labels[2].offKnown);
    EXPECT_EQ(vr.analysis.labels[2].staticOff, 16);
}

TEST(Labeling, DynamicOffsetsLoseStaticOffset)
{
    Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u8 *)(r6 + 12)
        r6 += r3
        r4 = *(u8 *)(r6 + 0)
        r0 = 0
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok);
    EXPECT_EQ(vr.analysis.labels[3].region, MemRegion::Packet);
    EXPECT_FALSE(vr.analysis.labels[3].offKnown);
}

TEST(CallSites, ConstKeyIsGlobalState)
{
    Program prog = assemble(R"(
        .map stats array 4 8 4
        r3 = 2
        *(u32 *)(r10 - 4) = r3
        r1 = map[stats]
        r2 = r10
        r2 += -4
        call 1
        r0 = 0
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok);
    const CallSite &site = vr.analysis.calls[5];
    EXPECT_TRUE(site.reachable);
    EXPECT_EQ(site.mapId, 0u);
    EXPECT_TRUE(site.keyConst);
    EXPECT_TRUE(site.keyOnStack);
    EXPECT_EQ(site.keyStackOff, 512 - 4);
}

TEST(CallSites, PacketDerivedKeyIsFlowState)
{
    Program prog = assemble(R"(
        .map flows hash 4 8 4
        r6 = *(u32 *)(r1 + 0)
        r3 = *(u32 *)(r6 + 26)
        *(u32 *)(r10 - 4) = r3
        r1 = map[flows]
        r2 = r10
        r2 += -4
        call 1
        r0 = 0
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok);
    EXPECT_FALSE(vr.analysis.calls[6].keyConst);
}

TEST(CallSites, ValueConstnessForSdnetModel)
{
    Program const_update = assemble(R"(
        .map m hash 4 8 4
        r3 = 1
        *(u32 *)(r10 - 4) = r3
        r4 = 7
        *(u64 *)(r10 - 16) = r4
        r1 = map[m]
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r0 = 0
        exit
    )");
    const VerifyResult vr1 = verify(const_update);
    ASSERT_TRUE(vr1.ok);
    EXPECT_TRUE(vr1.analysis.calls[10].valueConst);

    Program dyn_update = assemble(R"(
        .map m hash 4 8 4
        r6 = *(u32 *)(r1 + 0)
        r3 = 1
        *(u32 *)(r10 - 4) = r3
        r4 = *(u32 *)(r6 + 26)
        *(u64 *)(r10 - 16) = r4
        r1 = map[m]
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r0 = 0
        exit
    )");
    const VerifyResult vr2 = verify(dyn_update);
    ASSERT_TRUE(vr2.ok);
    EXPECT_FALSE(vr2.analysis.calls[11].valueConst);
}

TEST(Verifier, AllEvaluationAppsVerify)
{
    for (const apps::AppSpec &spec : apps::paperApps()) {
        const VerifyResult vr = verify(spec.prog);
        EXPECT_TRUE(vr.ok) << spec.prog.name << ": "
                           << (vr.errors.empty() ? "" : vr.errors[0]);
    }
    EXPECT_TRUE(verify(apps::makeToyCounter().prog).ok);
    EXPECT_TRUE(verify(apps::makeLeakyBucket().prog).ok);
    EXPECT_TRUE(verify(apps::makeElasticDemo().prog).ok);
}

TEST(Verifier, ReachabilityTracksDeadCode)
{
    Program prog = assemble(R"(
        r0 = 0
        goto out
        r0 = 1
        out:
        exit
    )");
    const VerifyResult vr = verify(prog);
    ASSERT_TRUE(vr.ok);
    EXPECT_TRUE(vr.analysis.reachable[0]);
    EXPECT_FALSE(vr.analysis.reachable[2]);
    EXPECT_TRUE(vr.analysis.reachable[3]);
}

}  // namespace
}  // namespace ehdl::ebpf
