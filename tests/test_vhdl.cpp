/**
 * @file
 * VHDL backend tests: structural completeness of the emitted RTL (entity,
 * per-stage processes, eHDLmap components, hazard blocks, disable
 * signals) and determinism of generation.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "hdl/compiler.hpp"
#include "hdl/vhdl.hpp"
#include "net/headers.hpp"

namespace ehdl::hdl {
namespace {

TEST(Vhdl, ToyDesignStructure)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const std::string vhdl = generateVhdl(pipe);

    EXPECT_NE(vhdl.find("package ehdl_pkg"), std::string::npos);
    EXPECT_NE(vhdl.find("entity toy_counter_pipeline is"),
              std::string::npos);
    EXPECT_NE(vhdl.find("architecture pipeline of"), std::string::npos);
    // One process per stage.
    for (size_t s = 0; s < pipe.numStages(); ++s) {
        EXPECT_NE(vhdl.find("stage_" + std::to_string(s) + " : process"),
                  std::string::npos)
            << "stage " << s;
    }
    // The map block and its host channel (section 4.1 / 6).
    EXPECT_NE(vhdl.find("entity ehdlmap_stats"), std::string::npos);
    EXPECT_NE(vhdl.find("host_valid"), std::string::npos);
    // Frame ports sized to the configured frame bytes.
    EXPECT_NE(vhdl.find("FRAME_BYTES : integer := 64"), std::string::npos);
    EXPECT_NE(vhdl.find("rx_data"), std::string::npos);
    EXPECT_NE(vhdl.find("tx_action"), std::string::npos);
}

TEST(Vhdl, DisableSignalsPerBlock)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const std::string vhdl = generateVhdl(pipe);
    // Predication: enable signals are declared and driven.
    EXPECT_NE(vhdl.find("signal en_b"), std::string::npos);
    EXPECT_NE(vhdl.find("<= '1'"), std::string::npos);
}

TEST(Vhdl, HazardBlocksEmitted)
{
    const Pipeline pipe = compile(apps::makeLeakyBucket().prog);
    const std::string vhdl = generateVhdl(pipe);
    EXPECT_NE(vhdl.find("Flush evaluation block"), std::string::npos);
    EXPECT_NE(vhdl.find("WAR delay buffer"), std::string::npos);
    EXPECT_NE(vhdl.find("signal flush_m"), std::string::npos);
}

TEST(Vhdl, AtomicAndConstantKeyNoted)
{
    const Pipeline pipe = compile(apps::makeRouterIpv4().prog);
    const std::string vhdl = generateVhdl(pipe);
    EXPECT_NE(vhdl.find("constant key / global state"), std::string::npos);
    EXPECT_NE(vhdl.find("ehdlmap_routes"), std::string::npos);
    EXPECT_NE(vhdl.find("ehdlmap_rtstats"), std::string::npos);
}

TEST(Vhdl, Deterministic)
{
    const Pipeline pipe = compile(apps::makeSimpleFirewall().prog);
    EXPECT_EQ(generateVhdl(pipe), generateVhdl(pipe));
}

TEST(Vhdl, CustomEntityName)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    VhdlOptions opts;
    opts.entityName = "my design!";  // sanitized
    const std::string vhdl = generateVhdl(pipe, opts);
    EXPECT_NE(vhdl.find("entity my_design_ is"), std::string::npos);
}

TEST(Vhdl, PrunedStateOnlyDeclaresLiveRegisters)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const std::string vhdl = generateVhdl(pipe);
    // Count r*_s* signal declarations; must equal the summed live regs.
    size_t live = 0;
    for (const Stage &stage : pipe.stages)
        live += stage.numLiveRegs();
    size_t declared = 0;
    size_t pos = 0;
    while ((pos = vhdl.find("  signal r", pos)) != std::string::npos) {
        const size_t eol = vhdl.find('\n', pos);
        if (vhdl.substr(pos, eol - pos).find(": ereg_t;") !=
            std::string::npos)
            ++declared;
        ++pos;
    }
    EXPECT_EQ(declared, live);
}

TEST(Vhdl, EveryInstructionCommented)
{
    const Pipeline pipe = compile(apps::makeDnat().prog);
    const std::string vhdl = generateVhdl(pipe);
    // Spot-check a few distinctive instructions appear as comments.
    EXPECT_NE(vhdl.find("call 1"), std::string::npos);
    EXPECT_NE(vhdl.find("call 2"), std::string::npos);
    EXPECT_NE(vhdl.find("exit"), std::string::npos);
}

TEST(VhdlTestbench, StructureAndStimulus)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    net::PacketSpec spec;
    spec.totalLen = 100;  // two frames at 64B
    const net::Packet pkt = net::PacketFactory::build(spec);
    const std::string tb = generateTestbench(pipe, pkt.bytes());
    EXPECT_NE(tb.find("entity toy_counter_pipeline_tb is"),
              std::string::npos);
    EXPECT_NE(tb.find("dut : entity work.toy_counter_pipeline"),
              std::string::npos);
    EXPECT_NE(tb.find("-- frame 0"), std::string::npos);
    EXPECT_NE(tb.find("-- frame 1"), std::string::npos);
    EXPECT_EQ(tb.find("-- frame 2"), std::string::npos);
    EXPECT_NE(tb.find("rx_sof <= '1';"), std::string::npos);
    EXPECT_NE(tb.find("severity failure"), std::string::npos);
    // The stimulus embeds the packet's first bytes (dst MAC 02...).
    EXPECT_NE(tb.find("x\""), std::string::npos);
}

TEST(VhdlTestbench, SingleFrameForShortPackets)
{
    const Pipeline pipe = compile(apps::makeToyCounter().prog);
    const std::string tb =
        generateTestbench(pipe, std::vector<uint8_t>(60, 0xaa));
    EXPECT_NE(tb.find("-- frame 0"), std::string::npos);
    EXPECT_EQ(tb.find("-- frame 1"), std::string::npos);
    EXPECT_NE(tb.find("rx_eof <= '1';"), std::string::npos);
}

}  // namespace
}  // namespace ehdl::hdl
