/**
 * @file
 * Reference VM tests: ALU semantics (64/32-bit, edge values), tagged
 * pointer rules, memory access and traps, helper functions, and the
 * properties that make pipeline replay deterministic (stateless prandom,
 * arrival-time clock).
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/builder.hpp"
#include "ebpf/helpers.hpp"
#include "ebpf/vm.hpp"
#include "net/headers.hpp"

namespace ehdl::ebpf {
namespace {

/** Run a program that computes r0 over a default packet. */
uint64_t
runR0(Program prog, net::Packet *pkt_out = nullptr)
{
    MapSet maps(prog.maps);
    Vm vm(prog, maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    pkt.id = 1;
    const ExecResult result = vm.run(pkt);
    EXPECT_FALSE(result.trapped) << result.trapReason;
    if (pkt_out != nullptr)
        *pkt_out = pkt;
    return result.action == XdpAction::Aborted && result.trapped
               ? ~0ULL
               : static_cast<uint64_t>(result.action);
}

/** Run a program and return the full result. */
ExecResult
runProgram(const Program &prog, MapSet &maps, net::Packet &pkt)
{
    Vm vm(prog, maps);
    return vm.run(pkt);
}

/** r0 = a op b (64-bit), returned as the exit code's low bits is too
 *  narrow, so store to a map instead. */
uint64_t
evalAlu64(AluOp op, uint64_t a, uint64_t b)
{
    ProgramBuilder builder("alu");
    const uint32_t map = builder.addMap({"out", MapKind::Array, 4, 8, 1});
    builder.lddw(6, static_cast<int64_t>(a));
    builder.lddw(7, static_cast<int64_t>(b));
    builder.aluReg(op, 6, 7);
    builder.mov(3, 0);
    builder.stx(MemSize::W, 10, -4, 3);
    builder.ldMap(1, map);
    builder.movReg(2, 10);
    builder.alu(AluOp::Add, 2, -4);
    builder.call(kHelperMapLookup);
    builder.stx(MemSize::DW, 0, 0, 6);
    builder.mov(0, 2);
    builder.exit();
    Program prog = builder.build();
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_FALSE(result.trapped) << result.trapReason;
    return loadLe<uint64_t>(maps.at(0).valueAt(0));
}

struct AluCase
{
    AluOp op;
    uint64_t a, b, expect;
};

class Alu64Test : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(Alu64Test, Evaluates)
{
    const AluCase &c = GetParam();
    EXPECT_EQ(evalAlu64(c.op, c.a, c.b), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, Alu64Test,
    ::testing::Values(
        AluCase{AluOp::Add, 5, 7, 12},
        AluCase{AluOp::Add, ~0ULL, 1, 0},
        AluCase{AluOp::Sub, 5, 7, static_cast<uint64_t>(-2)},
        AluCase{AluOp::Mul, 0xffffffffULL, 0xffffffffULL,
                0xfffffffe00000001ULL},
        AluCase{AluOp::Div, 100, 7, 14},
        AluCase{AluOp::Div, 100, 0, 0},            // div-by-zero -> 0
        AluCase{AluOp::Mod, 100, 7, 2},
        AluCase{AluOp::Mod, 100, 0, 100},          // mod-by-zero -> dst
        AluCase{AluOp::Or, 0xf0, 0x0f, 0xff},
        AluCase{AluOp::And, 0xff00, 0x0ff0, 0x0f00},
        AluCase{AluOp::Xor, 0xff, 0x0f, 0xf0},
        AluCase{AluOp::Lsh, 1, 63, 1ULL << 63},
        AluCase{AluOp::Lsh, 1, 64, 1},             // shift amount masked
        AluCase{AluOp::Rsh, 1ULL << 63, 63, 1},
        AluCase{AluOp::Arsh, static_cast<uint64_t>(-8), 1,
                static_cast<uint64_t>(-4)},
        AluCase{AluOp::Arsh, 8, 1, 4}));

TEST(Vm, Alu32ZeroExtends)
{
    ProgramBuilder b("alu32");
    b.lddw(1, static_cast<int64_t>(0xffffffffffffffffULL));
    b.alu32(AluOp::Add, 1, 1);  // w1 = 0xffffffff + 1 = 0 (32-bit wrap)
    b.jcond(JmpOp::Jeq, 1, 0, "zero");
    b.mov(0, 1);
    b.exit();
    b.label("zero");
    b.mov(0, 2);
    b.exit();
    EXPECT_EQ(runR0(b.build()), 2u);
}

TEST(Vm, NegAndEndian)
{
    EXPECT_EQ(evalAlu64(AluOp::Sub, 0, 5), static_cast<uint64_t>(-5));
    ProgramBuilder b("end");
    const uint32_t map = b.addMap({"out", MapKind::Array, 4, 8, 1});
    b.lddw(6, 0x1234);
    b.endian(true, 6, 16);  // be16: 0x1234 -> 0x3412 on LE
    b.mov(3, 0);
    b.stx(MemSize::W, 10, -4, 3);
    b.ldMap(1, map);
    b.movReg(2, 10);
    b.alu(AluOp::Add, 2, -4);
    b.call(kHelperMapLookup);
    b.stx(MemSize::DW, 0, 0, 6);
    b.mov(0, 2);
    b.exit();
    Program prog = b.build();
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    runProgram(prog, maps, pkt);
    EXPECT_EQ(loadLe<uint64_t>(maps.at(0).valueAt(0)), 0x3412u);
}

TEST(Vm, JumpConditionSweep)
{
    struct JmpCase
    {
        const char *cond;
        int64_t a, b;
        bool taken;
    };
    const JmpCase cases[] = {
        {"==", 5, 5, true},    {"==", 5, 6, false},
        {"!=", 5, 6, true},    {">", 6, 5, true},
        {">", 5, 6, false},    {">=", 5, 5, true},
        {"<", 5, 6, true},     {"<=", 6, 5, false},
        {"s>", -1, -2, true},  {"s>", 1, -1, true},
        {"s<", -2, -1, true},  {"s<=", -1, -1, true},
        {"s>=", -1, 1, false}, {"&", 6, 2, true},
        {"&", 4, 2, false},
    };
    for (const JmpCase &c : cases) {
        std::string text = "r1 = " + std::to_string(c.a) + "\n" +
                           "r2 = " + std::to_string(c.b) + "\n" +
                           "if r1 " + c.cond + " r2 goto yes\n" +
                           "r0 = 0\nexit\nyes:\nr0 = 1\nexit\n";
        Program prog = assemble(text);
        MapSet maps(prog.maps);
        net::PacketSpec spec;
        net::Packet pkt = net::PacketFactory::build(spec);
        const ExecResult result = runProgram(prog, maps, pkt);
        EXPECT_EQ(result.action == XdpAction::Drop, c.taken)
            << c.a << " " << c.cond << " " << c.b;
    }
}

TEST(Vm, Jmp32ComparesLow32)
{
    ProgramBuilder b("j32");
    b.lddw(1, static_cast<int64_t>(0xffffffff00000005ULL));
    Insn insn;
    insn.opcode = makeJmpOpcode(InsnClass::Jmp32, JmpOp::Jeq, SrcKind::K);
    insn.dst = 1;
    insn.imm = 5;
    insn.off = 2;  // to "yes"
    // Manual placement: mov r0,0; exit; yes: mov r0,2; exit.
    Program prog;
    prog.name = "j32";
    prog.insns.push_back(b.build().insns[0]);
    prog.insns.push_back(insn);
    ProgramBuilder tail("t");
    tail.mov(0, 0);
    tail.exit();
    tail.mov(0, 2);
    tail.exit();
    for (const Insn &i : tail.build().insns)
        prog.insns.push_back(i);
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(prog, maps, pkt).action, XdpAction::Pass);
}

TEST(Vm, PacketLoadStore)
{
    Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r2 = *(u8 *)(r6 + 0)
        r2 += 1
        *(u8 *)(r6 + 0) = r2
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const uint8_t before = pkt.at(0);
    runProgram(prog, maps, pkt);
    EXPECT_EQ(pkt.at(0), static_cast<uint8_t>(before + 1));
}

TEST(Vm, PacketBoundsTrap)
{
    Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        r2 = *(u32 *)(r6 + 4096)
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_TRUE(result.trapped);
    EXPECT_EQ(result.action, XdpAction::Aborted);
}

TEST(Vm, PacketEndComparison)
{
    Program prog = assemble(R"(
        r2 = *(u32 *)(r1 + 4)
        r1 = *(u32 *)(r1 + 0)
        r3 = r1
        r3 += 64
        if r3 > r2 goto small
        r0 = 3
        exit
        small:
        r0 = 1
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec64;
    spec64.totalLen = 64;
    net::Packet p64 = net::PacketFactory::build(spec64);
    EXPECT_EQ(runProgram(prog, maps, p64).action, XdpAction::Tx);
    net::PacketSpec spec63;
    spec63.totalLen = 63;
    net::Packet p63 = net::PacketFactory::build(spec63);
    EXPECT_EQ(runProgram(prog, maps, p63).action, XdpAction::Drop);
}

TEST(Vm, StackSpillReloadOfPointer)
{
    // Spill the packet pointer, reload it, dereference.
    Program prog = assemble(R"(
        r6 = *(u32 *)(r1 + 0)
        *(u64 *)(r10 - 8) = r6
        r7 = *(u64 *)(r10 - 8)
        r0 = *(u8 *)(r7 + 12)
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_FALSE(result.trapped) << result.trapReason;
}

TEST(Vm, StackBoundsTrap)
{
    Program prog = assemble(R"(
        r2 = *(u64 *)(r10 - 520)
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_TRUE(runProgram(prog, maps, pkt).trapped);
}

TEST(Vm, MapLookupMissAndHit)
{
    Program prog = assemble(R"(
        .map m hash 4 8 4
        r3 = 77
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto miss
        r0 = 3
        exit
        miss:
        r0 = 1
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(prog, maps, pkt).action, XdpAction::Drop);
    std::vector<uint8_t> key(4), value(8, 1);
    storeLe<uint32_t>(key.data(), 77);
    maps.at(0).hostUpdate(key, value);
    net::Packet pkt2 = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(prog, maps, pkt2).action, XdpAction::Tx);
}

TEST(Vm, MapUpdateDeleteFromDataPlane)
{
    Program prog = assemble(R"(
        .map m hash 4 8 4
        r3 = 5
        *(u32 *)(r10 - 4) = r3
        r3 = 99
        *(u64 *)(r10 - 16) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_FALSE(runProgram(prog, maps, pkt).trapped);
    std::vector<uint8_t> key(4);
    storeLe<uint32_t>(key.data(), 5);
    auto got = maps.at(0).hostLookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(loadLe<uint64_t>(got->data()), 99u);
}

TEST(Vm, AtomicAddOnMapValue)
{
    Program prog = assemble(R"(
        .map stats array 4 8 1
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        r1 = map[stats]
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto out
        r2 = 7
        lock *(u64 *)(r0 + 0) += r2
        out:
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    for (int i = 0; i < 3; ++i) {
        net::Packet pkt = net::PacketFactory::build(spec);
        runProgram(prog, maps, pkt);
    }
    EXPECT_EQ(loadLe<uint64_t>(maps.at(0).valueAt(0)), 21u);
}

TEST(Vm, NullMapValueDerefTraps)
{
    Program prog = assemble(R"(
        .map m hash 4 8 4
        r3 = 1
        *(u32 *)(r10 - 4) = r3
        r1 = map[m]
        r2 = r10
        r2 += -4
        call 1
        r2 = *(u64 *)(r0 + 0)
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_TRUE(runProgram(prog, maps, pkt).trapped);
}

TEST(Vm, KtimeReturnsArrivalTime)
{
    Program prog = assemble(R"(
        call 5
        if r0 == 1234 goto yes
        r0 = 1
        exit
        yes:
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    pkt.arrivalNs = 1234;
    EXPECT_EQ(runProgram(prog, maps, pkt).action, XdpAction::Pass);
}

TEST(Vm, PrandomDeterministicPerPacket)
{
    Program prog = assemble(R"(
        .map out array 4 8 1
        call 7
        r6 = r0
        r3 = 0
        *(u32 *)(r10 - 4) = r3
        r1 = map[out]
        r2 = r10
        r2 += -4
        call 1
        *(u64 *)(r0 + 0) = r6
        r0 = 2
        exit
    )");
    auto run_with_id = [&prog](uint64_t id) {
        MapSet maps(prog.maps);
        net::PacketSpec spec;
        net::Packet pkt = net::PacketFactory::build(spec);
        pkt.id = id;
        Vm vm(prog, maps);
        vm.run(pkt);
        return loadLe<uint64_t>(maps.at(0).valueAt(0));
    };
    EXPECT_EQ(run_with_id(5), run_with_id(5));   // replay-stable
    EXPECT_NE(run_with_id(5), run_with_id(6));   // varies across packets
}

TEST(Vm, RedirectHelper)
{
    Program prog = assemble(R"(
        r1 = 9
        r2 = 0
        call 23
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_EQ(result.action, XdpAction::Redirect);
    EXPECT_EQ(result.redirectIfindex, 9u);
}

TEST(Vm, AdjustHeadGrowAndStalePointer)
{
    Program prog = assemble(R"(
        r6 = r1
        r7 = *(u32 *)(r1 + 0)
        r2 = -4
        call 44
        if r0 != 0 goto fail
        r1 = *(u32 *)(r6 + 0)
        r3 = *(u8 *)(r1 + 0)
        r0 = 3
        exit
        fail:
        r0 = 1
        exit
    )");
    // r1 must be the ctx for adjust_head; rebuild with correct regs.
    Program fixed = assemble(R"(
        r6 = r1
        r2 = -4
        call 44
        if r0 != 0 goto fail
        r1 = *(u32 *)(r6 + 0)
        r3 = *(u8 *)(r1 + 0)
        r0 = 3
        exit
        fail:
        r0 = 1
        exit
    )");
    (void)prog;
    MapSet maps(fixed.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const uint32_t before = pkt.size();
    const ExecResult result = runProgram(fixed, maps, pkt);
    EXPECT_FALSE(result.trapped) << result.trapReason;
    EXPECT_EQ(result.action, XdpAction::Tx);
    EXPECT_EQ(pkt.size(), before + 4);

    // Using a pre-adjust pointer afterwards must trap.
    Program stale = assemble(R"(
        r6 = r1
        r7 = *(u32 *)(r1 + 0)
        r1 = r6
        r2 = -4
        call 44
        r3 = *(u8 *)(r7 + 0)
        r0 = 2
        exit
    )");
    MapSet maps2(stale.maps);
    net::Packet pkt2 = net::PacketFactory::build(spec);
    EXPECT_TRUE(runProgram(stale, maps2, pkt2).trapped);
}

TEST(Vm, AdjustTailTruncatesAndInvalidates)
{
    Program prog = assemble(R"(
        r6 = r1
        r7 = *(u32 *)(r1 + 0)
        r2 = -20
        call 65
        if r0 != 0 goto fail
        r0 = 2
        exit
        fail:
        r0 = 1
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    spec.totalLen = 100;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_EQ(result.action, XdpAction::Pass);
    EXPECT_EQ(pkt.size(), 80u);

    // Growing beyond tailroom fails gracefully.
    Program grow = assemble(R"(
        r2 = 1000
        call 65
        if r0 != 0 goto fail
        r0 = 2
        exit
        fail:
        r0 = 1
        exit
    )");
    MapSet maps2(grow.maps);
    net::Packet pkt2 = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(grow, maps2, pkt2).action, XdpAction::Drop);

    // Stale pointers after adjust_tail trap.
    Program stale = assemble(R"(
        r6 = r1
        r7 = *(u32 *)(r1 + 0)
        r1 = r6
        r2 = -8
        call 65
        r3 = *(u8 *)(r7 + 0)
        r0 = 2
        exit
    )");
    MapSet maps3(stale.maps);
    net::Packet pkt3 = net::PacketFactory::build(spec);
    EXPECT_TRUE(runProgram(stale, maps3, pkt3).trapped);
}

TEST(Vm, PacketLengthViaPointerDifference)
{
    Program prog = assemble(R"(
        r2 = *(u32 *)(r1 + 4)
        r1 = *(u32 *)(r1 + 0)
        r3 = r2
        r3 -= r1
        if r3 == 90 goto yes
        r0 = 1
        exit
        yes:
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    spec.totalLen = 90;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(prog, maps, pkt).action, XdpAction::Pass);
}

TEST(Vm, CallerSavedRegistersClobbered)
{
    Program prog = assemble(R"(
        r3 = 55
        call 5
        r0 = r3
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    // Reading clobbered r3 after the call is a trap-free VM behaviour?
    // No: the VM zeroes it to a scalar; exit code is 0 -> Aborted.
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_EQ(result.action, XdpAction::Aborted);
}

TEST(Vm, CalleeSavedSurviveCalls)
{
    Program prog = assemble(R"(
        r6 = 3
        call 5
        r0 = r6
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    EXPECT_EQ(runProgram(prog, maps, pkt).action, XdpAction::Tx);
}

TEST(Vm, InstructionBudgetStopsRunaway)
{
    // Infinite loop: must abort via the budget, not hang.
    ProgramBuilder b("inf");
    b.mov(1, 0);
    b.label("top");
    b.jmp("top");
    b.exit();
    Program prog = b.build();
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    Vm vm(prog, maps);
    const ExecResult result = vm.run(pkt, 1000);
    EXPECT_TRUE(result.trapped);
    EXPECT_EQ(result.insnsExecuted, 1001u);
}

TEST(Vm, InsnCountTracksTakenPath)
{
    Program prog = assemble(R"(
        r1 = 1
        if r1 == 1 goto skip
        r2 = 2
        r2 = 3
        r2 = 4
        skip:
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    Vm vm(prog, maps);
    const ExecResult result = vm.run(pkt);
    EXPECT_EQ(result.insnsExecuted, 4u);  // mov, jcond, mov, exit
}

TEST(Vm, CsumDiffMatchesManualSum)
{
    Program prog = assemble(R"(
        .map out array 4 8 1
        r3 = 0x1234
        *(u64 *)(r10 - 8) = r3
        r1 = r10
        r1 += -8
        r2 = 0
        r3 = r10
        r3 += -8
        r4 = 2
        r5 = 0
        call 28
        r6 = r0
        r3 = 0
        *(u32 *)(r10 - 12) = r3
        r1 = map[out]
        r2 = r10
        r2 += -12
        call 1
        *(u64 *)(r0 + 0) = r6
        r0 = 2
        exit
    )");
    MapSet maps(prog.maps);
    net::PacketSpec spec;
    net::Packet pkt = net::PacketFactory::build(spec);
    const ExecResult result = runProgram(prog, maps, pkt);
    EXPECT_FALSE(result.trapped) << result.trapReason;
    // Sum over the two bytes {0x34, 0x12} (LE store) = 0x3412.
    EXPECT_EQ(loadLe<uint64_t>(maps.at(0).valueAt(0)), 0x3412u);
}

}  // namespace
}  // namespace ehdl::ebpf
