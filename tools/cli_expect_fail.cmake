# Negative CLI test driver: run `ehdlc compile` on a program that must be
# rejected, and check that it (a) exits nonzero, (b) prints the failure
# summary, and (c) lists EVERY diagnostic — at least MIN_ERRORS lines
# matching ERROR_REGEX — rather than stopping at the first problem.
#
# Usage:
#   cmake -DEHDLC=<path> -DPROG=<file.s> [-DMIN_ERRORS=2]
#         [-DERROR_REGEX=...] -P cli_expect_fail.cmake

if(NOT DEFINED MIN_ERRORS)
    set(MIN_ERRORS 2)
endif()
if(NOT DEFINED ERROR_REGEX)
    set(ERROR_REGEX "error\\[[a-z-]+\\]")
endif()

execute_process(COMMAND "${EHDLC}" compile "${PROG}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
set(all "${out}${err}")

if(rc EQUAL 0)
    message(FATAL_ERROR
            "expected nonzero exit for ${PROG}, got 0; output:\n${all}")
endif()
if(NOT all MATCHES "failed to compile")
    message(FATAL_ERROR "missing failure summary; output:\n${all}")
endif()
string(REGEX MATCHALL "${ERROR_REGEX}" matches "${all}")
list(LENGTH matches n)
if(n LESS ${MIN_ERRORS})
    message(FATAL_ERROR
            "expected at least ${MIN_ERRORS} diagnostics matching "
            "'${ERROR_REGEX}', got ${n}; output:\n${all}")
endif()
