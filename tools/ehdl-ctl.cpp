/**
 * @file
 * Host control-plane driver: runs a scripted `.ctl` schedule (see
 * src/ctl/command.hpp for the format) against a built-in application
 * compiled and running under PipeSim or MultiPipeSim, over the modeled
 * PCIe mailbox channel.
 *
 *   ehdl-ctl run SCHEDULE.ctl [options]
 *
 * The workload is generated traffic (line rate, flow count and protocol
 * from the app's suggested parameters unless overridden). The apply log —
 * per-transaction submit/device/complete cycles, per-replica op results
 * and polled stats snapshots — is printed as a table and optionally
 * written to a JSON file for scripts (--stats-out). `--poll-stats N`
 * injects a periodic stats_read every N cycles on top of the schedule,
 * which costs the datapath nothing (stats reads are side-band).
 *
 * `--verify` replays the recorded apply log against the sequential
 * reference VM (ctl::replayScheduleOnVm) and cross-checks per-packet
 * verdicts, host op results, and final map state; it is available for the
 * single-pipeline and sharded multi-queue backends (shared-map mode has no
 * global sequential packet order to replay).
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "apps/apps.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "ctl/controller.hpp"
#include "ebpf/vm.hpp"
#include "hdl/compiler.hpp"
#include "host/host_dma.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/stats_json.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace ehdl;

/** Built-in application registry (accepts the ehdlc names + aliases). */
apps::AppSpec
resolveApp(const std::string &ref)
{
    const std::string name =
        ref.rfind("app:", 0) == 0 ? ref.substr(4) : ref;
    static const std::pair<const char *, apps::AppSpec (*)()> kApps[] = {
        {"toy", apps::makeToyCounter},
        {"firewall", apps::makeSimpleFirewall},
        {"router", apps::makeRouterIpv4},
        {"router_ipv4", apps::makeRouterIpv4},
        {"tunnel", apps::makeTxIpTunnel},
        {"dnat", apps::makeDnat},
        {"suricata", apps::makeSuricataFilter},
        {"leaky_bucket", apps::makeLeakyBucket},
        {"lb", apps::makeL4LoadBalancer},
        {"monitor", apps::makeMonitorSampler},
    };
    for (const auto &[key, make] : kApps)
        if (name == key)
            return make();
    std::string known;
    for (const auto &[key, make] : kApps)
        known += std::string(known.empty() ? "" : ", ") + key;
    fatal("unknown app '", ref, "' (known: ", known, ")");
}

void
usage(std::ostream &os)
{
    os << "usage: ehdl-ctl run SCHEDULE.ctl [options]\n"
          "\n"
          "Runs a host control-plane schedule against a built-in app\n"
          "compiled and simulated under generated line-rate traffic.\n"
          "\n"
          "options:\n"
          "  --app NAME        application (default router_ipv4; accepts\n"
          "                    the app: prefix and ehdlc names)\n"
          "  --swap L=NAME     register app NAME as swap_program target L\n"
          "  --replicas N      pipeline replicas (default 1 = single\n"
          "                    PipeSim; >= 2 uses MultiPipeSim)\n"
          "  --map-mode M      sharded|shared replica maps (default\n"
          "                    sharded)\n"
          "  --threaded        drain sharded replicas on worker threads\n"
          "  --packets N       workload packets (default 2000)\n"
          "  --flows N         workload flows (default 64)\n"
          "  --rate GBPS       line rate in Gbps (default 100)\n"
          "  --rtt N           mailbox round-trip latency, shell cycles\n"
          "                    (default 700 ~= 2.8us at 250MHz)\n"
          "  --inflight N      mailbox in-flight transaction window\n"
          "                    (default 8)\n"
          "  --engine SPEC     stage-execution engine: interp (default),\n"
          "                    aot, aot-native\n"
          "  --sched MODE      cycle scheduling: dense (default) or event\n"
          "                    (bit-identical fast-forward; quiescence\n"
          "                    boundaries land on the same cycles)\n"
          "  --paranoid        cross-check hazard summaries against the\n"
          "                    full read scan\n"
          "  --poll-stats N    add a stats_read every N cycles\n"
          "  --host-rings      attach the host DMA datapath (RX rings,\n"
          "                    coalescing, host consumer; src/host)\n"
          "  --ring-depth N    host RX ring depth (implies --host-rings)\n"
          "  --host-rate MPPS  host consumer service rate (implies\n"
          "                    --host-rings)\n"
          "  --coalesce C[,T]  completion coalescing: IRQ after C\n"
          "                    completions or T cycles (implies\n"
          "                    --host-rings)\n"
          "  --host-frac F     tag fraction F of workload flows as\n"
          "                    host-destined (PASS-heavy)\n"
          "  --stats-out FILE  write the apply log + final stats as JSON\n"
          "  --verify          cross-check against the reference VM\n"
          "                    replay (single or sharded backends)\n"
          "  --quiet           suppress the per-transaction table\n";
}

uint64_t
parseNum(const char *flag, const char *value)
{
    if (!value)
        fatal(flag, " requires a value");
    try {
        size_t pos = 0;
        const uint64_t v = std::stoull(value, &pos);
        if (pos != std::strlen(value))
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal(flag, ": expected a number, got '", value, "'");
    }
}

std::string
hex(const std::vector<uint8_t> &bytes)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (const uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

using sim::statsJson;

Json
reportJson(const ctl::CtlRunReport &report)
{
    Json txns = Json::array();
    for (const ctl::CtlTxnRecord &rec : report.txns) {
        Json t;
        t.set("cycle", Json::integer(rec.txn.cycle))
            .set("kind", Json::str(ctl::ctlOpKindName(rec.txn.kind)))
            .set("submitCycle", Json::integer(rec.submitCycle))
            .set("deviceCycle", Json::integer(rec.deviceCycle))
            .set("completeCycle", Json::integer(rec.completeCycle));
        Json applies = Json::array();
        for (const uint64_t c : rec.applyCycle)
            applies.push(Json::integer(c));
        t.set("applyCycle", std::move(applies));
        Json retired = Json::array();
        for (const uint64_t n : rec.retiredBefore)
            retired.push(Json::integer(n));
        t.set("retiredBefore", std::move(retired));
        if (!rec.results.empty()) {
            Json replicas = Json::array();
            for (const auto &ops : rec.results) {
                Json per_op = Json::array();
                for (const ctl::CtlOpResult &r : ops) {
                    Json o;
                    o.set("rc", Json::integer(
                               static_cast<uint64_t>(r.rc < 0 ? -r.rc
                                                              : r.rc)));
                    if (r.rc < 0)
                        o.set("negative", Json::boolean(true));
                    if (r.hit || !r.value.empty()) {
                        o.set("hit", Json::boolean(r.hit));
                        o.set("value", Json::str(hex(r.value)));
                    }
                    per_op.push(std::move(o));
                }
                replicas.push(std::move(per_op));
            }
            t.set("results", std::move(replicas));
        }
        if (!rec.statsSnapshot.empty()) {
            Json snaps = Json::array();
            for (const sim::PipeSimStats &s : rec.statsSnapshot)
                snaps.push(statsJson(s, 250'000'000));
            t.set("stats", std::move(snaps));
        }
        if (!rec.streamSamples.empty()) {
            // The nfbmeter-style timestamped series, one array of
            // samples per replica/queue.
            Json replicas = Json::array();
            for (const auto &series : rec.streamSamples) {
                Json samples = Json::array();
                for (const ctl::CtlStreamSample &s : series) {
                    Json sample;
                    sample.set("cycle", Json::integer(s.cycle))
                        .set("stats", statsJson(s.stats, 250'000'000));
                    if (s.hostValid)
                        sample.set("host", host::hostQueueJson(s.host));
                    samples.push(std::move(sample));
                }
                replicas.push(std::move(samples));
            }
            t.set("streamSamples", std::move(replicas));
        }
        txns.push(std::move(t));
    }
    Json j;
    j.set("numReplicas", Json::integer(report.numReplicas))
        .set("txns", std::move(txns));
    return j;
}

struct Options
{
    std::string schedulePath;
    std::string app = "router_ipv4";
    std::vector<std::pair<std::string, std::string>> swaps;
    unsigned replicas = 1;
    sim::MapMode mapMode = sim::MapMode::Sharded;
    bool threaded = false;
    uint64_t packets = 2000;
    uint64_t flows = 64;
    double rateGbps = 100.0;
    sim::SimEngine engine = sim::SimEngine::Interp;
    sim::AotBackend aotBackend = sim::AotBackend::DirectThreaded;
    sim::SchedMode schedMode = sim::SchedMode::Dense;
    bool paranoid = false;
    ctl::CtlChannelConfig channel;
    uint64_t pollStats = 0;
    std::string statsOut;
    bool verify = false;
    bool quiet = false;
    bool hostRings = false;
    host::HostDmaConfig hostConfig;
    double hostFrac = 0.0;
};

/** Inject a periodic stats_read every @p period cycles over the run. */
void
addStatsPolling(ctl::CtlSchedule &sched, uint64_t period, uint64_t end)
{
    for (uint64_t cycle = period; cycle <= end; cycle += period) {
        ctl::CtlTxn txn;
        txn.cycle = cycle;
        txn.kind = ctl::CtlOpKind::StatsRead;
        sched.txns.push_back(std::move(txn));
    }
    std::stable_sort(sched.txns.begin(), sched.txns.end(),
                     [](const ctl::CtlTxn &a, const ctl::CtlTxn &b) {
                         return a.cycle < b.cycle;
                     });
}

/** Cross-check one replica's stream against the VM replay of the log. */
void
verifyReplica(const ebpf::Program &prog,
              const std::map<std::string, const ebpf::Program *> &programs,
              const std::vector<net::Packet> &stream,
              const ctl::CtlRunReport &report, unsigned replica,
              ebpf::MapSet &vm_maps, const sim::PipeSim &sim,
              const ebpf::MapSet &dev_maps)
{
    const ctl::CtlVmReplayResult replay = ctl::replayScheduleOnVm(
        prog, programs, stream, report, replica, vm_maps);
    const std::vector<sim::PacketOutcome> outcomes = sim.outcomes();
    if (outcomes.size() != replay.outcomes.size())
        fatal("verify: replica ", replica, " completed ", outcomes.size(),
              " packets, VM replay produced ", replay.outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const sim::PacketOutcome &dev = outcomes[i];
        const ctl::CtlVmOutcome &ref = replay.outcomes[i];
        if (dev.id != ref.id)
            fatal("verify: replica ", replica, " retire order differs at ",
                  i, " (pipeline packet ", dev.id, ", vm packet ", ref.id,
                  ")");
        if (dev.action != ref.action || dev.trapped != ref.trapped ||
            dev.redirectIfindex != ref.redirectIfindex ||
            dev.bytes != ref.bytes)
            fatal("verify: replica ", replica, " diverges on packet ",
                  dev.id);
    }
    for (size_t t = 0; t < report.txns.size(); ++t) {
        const auto &dev_results = report.txns[t].results;
        if (replica < dev_results.size() &&
            dev_results[replica] != replay.txnResults[t])
            fatal("verify: replica ", replica,
                  " host-op results differ on transaction ", t);
    }
    if (!ebpf::MapSet::equal(dev_maps, vm_maps))
        fatal("verify: replica ", replica, " final map state differs");
}

int
run(int argc, char **argv)
{
    Options opt;
    int argi = 1;
    if (argi < argc && std::string(argv[argi]) == "run")
        ++argi;
    for (; argi < argc; ++argi) {
        const std::string arg = argv[argi];
        const auto value = [&]() -> const char * {
            return argi + 1 < argc ? argv[++argi] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--app") {
            const char *v = value();
            if (!v)
                fatal("--app requires a value");
            opt.app = v;
        } else if (arg == "--swap") {
            const char *v = value();
            const char *eq = v ? std::strchr(v, '=') : nullptr;
            if (!eq || eq == v || !eq[1])
                fatal("--swap requires LABEL=APP");
            opt.swaps.emplace_back(std::string(v, eq), std::string(eq + 1));
        } else if (arg == "--replicas") {
            opt.replicas =
                static_cast<unsigned>(parseNum("--replicas", value()));
        } else if (arg == "--map-mode") {
            const char *v = value();
            if (v && std::string(v) == "sharded")
                opt.mapMode = sim::MapMode::Sharded;
            else if (v && std::string(v) == "shared")
                opt.mapMode = sim::MapMode::Shared;
            else
                fatal("--map-mode must be sharded or shared");
        } else if (arg == "--threaded") {
            opt.threaded = true;
        } else if (arg == "--packets") {
            opt.packets = parseNum("--packets", value());
        } else if (arg == "--flows") {
            opt.flows = parseNum("--flows", value());
        } else if (arg == "--rate") {
            opt.rateGbps =
                static_cast<double>(parseNum("--rate", value()));
        } else if (arg == "--rtt") {
            opt.channel.roundTripCycles = parseNum("--rtt", value());
        } else if (arg == "--inflight") {
            opt.channel.maxInFlight = static_cast<unsigned>(
                parseNum("--inflight", value()));
        } else if (arg == "--engine") {
            const char *v = value();
            sim::PipeSimConfig ec;
            if (!v || !sim::parseEngineSpec(v, ec))
                fatal("--engine expects interp, aot or aot-native");
            opt.engine = ec.engine;
            opt.aotBackend = ec.aotBackend;
        } else if (arg == "--sched") {
            const char *v = value();
            const std::string mode = v ? v : "";
            if (mode == "dense")
                opt.schedMode = sim::SchedMode::Dense;
            else if (mode == "event")
                opt.schedMode = sim::SchedMode::EventDriven;
            else
                fatal("--sched expects dense or event");
        } else if (arg == "--paranoid") {
            opt.paranoid = true;
        } else if (arg == "--host-rings") {
            opt.hostRings = true;
        } else if (arg == "--ring-depth") {
            opt.hostRings = true;
            opt.hostConfig.ringDepth =
                static_cast<unsigned>(parseNum("--ring-depth", value()));
        } else if (arg == "--host-rate") {
            const char *v = value();
            if (!v)
                fatal("--host-rate requires a value");
            opt.hostRings = true;
            opt.hostConfig.hostRateMpps = std::stod(v);
        } else if (arg == "--coalesce") {
            const char *v = value();
            if (!v)
                fatal("--coalesce requires COUNT[,TIMEOUT]");
            opt.hostRings = true;
            const std::string spec = v;
            const size_t comma = spec.find(',');
            opt.hostConfig.coalesceCount = static_cast<unsigned>(
                std::stoul(spec.substr(0, comma)));
            if (comma != std::string::npos)
                opt.hostConfig.coalesceTimeoutCycles =
                    std::stoull(spec.substr(comma + 1));
        } else if (arg == "--host-frac") {
            const char *v = value();
            if (!v)
                fatal("--host-frac requires a value");
            opt.hostFrac = std::stod(v);
        } else if (arg == "--poll-stats") {
            opt.pollStats = parseNum("--poll-stats", value());
        } else if (arg == "--stats-out") {
            const char *v = value();
            if (!v)
                fatal("--stats-out requires a file");
            opt.statsOut = v;
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(std::cerr);
            fatal("unknown option '", arg, "'");
        } else if (opt.schedulePath.empty()) {
            opt.schedulePath = arg;
        } else {
            fatal("more than one schedule file given");
        }
    }
    if (opt.schedulePath.empty()) {
        usage(std::cerr);
        fatal("a SCHEDULE.ctl file is required");
    }
    if (opt.replicas == 0)
        fatal("--replicas must be at least 1");
    if (opt.verify && opt.replicas >= 2 &&
        opt.mapMode == sim::MapMode::Shared)
        fatal("--verify is unavailable with --map-mode shared (no global "
              "sequential packet order to replay)");

    // Application + swap targets: compile everything up front.
    const apps::AppSpec spec = resolveApp(opt.app);
    const hdl::Pipeline pipe = hdl::compile(spec.prog);
    std::vector<std::pair<std::string, apps::AppSpec>> swap_specs;
    std::vector<std::pair<std::string, hdl::Pipeline>> swap_pipes;
    for (const auto &[label, ref] : opt.swaps) {
        swap_specs.emplace_back(label, resolveApp(ref));
        swap_pipes.emplace_back(label,
                                hdl::compile(swap_specs.back().second.prog));
    }

    ctl::CtlSchedule sched = ctl::loadSchedule(opt.schedulePath);

    // Workload: the app's suggested traffic shape at the requested rate.
    sim::TrafficConfig tc;
    tc.numFlows = opt.flows;
    tc.lineRateGbps = opt.rateGbps;
    tc.ipProto = spec.ipProto;
    tc.reverseFraction = spec.reverseFraction;
    tc.hostFlowFraction = opt.hostFrac;
    tc.seed = 42;
    sim::TrafficGen gen(tc);
    std::vector<net::Packet> packets;
    packets.reserve(opt.packets);
    for (uint64_t i = 0; i < opt.packets; ++i)
        packets.push_back(gen.next());
    if (opt.pollStats > 0) {
        const uint64_t end = gen.nowNs() / 4 + 2000;
        addStatsPolling(sched, opt.pollStats, end);
    }

    // VM-side program registry for --verify swap replay.
    std::map<std::string, const ebpf::Program *> vm_programs;
    for (const auto &[label, s] : swap_specs)
        vm_programs.emplace(label, &s.prog);

    ctl::CtlRunReport report;
    sim::PipeSimStats final_stats;
    sim::EngineInfo engine_info;
    std::unique_ptr<host::HostDatapath> host;
    if (opt.hostRings) {
        opt.hostConfig.numQueues = opt.replicas;
        host = std::make_unique<host::HostDatapath>(opt.hostConfig);
    }

    if (opt.replicas == 1) {
        ebpf::MapSet maps(spec.prog.maps);
        spec.seedMaps(maps);
        sim::PipeSimConfig sc;
        sc.inputQueueCapacity = 1u << 20;
        sc.engine = opt.engine;
        sc.aotBackend = opt.aotBackend;
        sc.schedMode = opt.schedMode;
        sc.paranoidChecks = opt.paranoid;
        sim::PipeSim sim(pipe, maps, sc);
        if (host)
            host->attach(sim);
        for (const net::Packet &pkt : packets)
            sim.offer(pkt);
        ctl::CtlController ctrl(sim, maps, opt.channel);
        ctrl.attachHost(host.get());
        for (const auto &[label, p] : swap_pipes)
            ctrl.addProgram(label, p);
        report = ctrl.run(sched);
        sim.drain();
        final_stats = sim.stats();
        engine_info = sim.engineInfo();
        if (opt.verify) {
            ebpf::MapSet vm_maps(spec.prog.maps);
            spec.seedMaps(vm_maps);
            verifyReplica(spec.prog, vm_programs, packets, report, 0,
                          vm_maps, sim, maps);
        }
    } else {
        ebpf::MapSet seed(spec.prog.maps);
        spec.seedMaps(seed);
        sim::MultiPipeSimConfig mc;
        mc.numReplicas = opt.replicas;
        mc.mapMode = opt.mapMode;
        mc.threaded = opt.threaded;
        mc.pipe.inputQueueCapacity = 1u << 20;
        mc.pipe.engine = opt.engine;
        mc.pipe.aotBackend = opt.aotBackend;
        mc.pipe.schedMode = opt.schedMode;
        mc.pipe.paranoidChecks = opt.paranoid;
        sim::MultiPipeSim multi(pipe, seed, mc);
        if (host)
            host->attach(multi);
        std::vector<std::vector<net::Packet>> streams(opt.replicas);
        for (const net::Packet &pkt : packets)
            streams[multi.dispatch(pkt)].push_back(pkt);
        for (const net::Packet &pkt : packets)
            multi.offer(pkt);
        ctl::CtlController ctrl(multi, opt.channel);
        ctrl.attachHost(host.get());
        for (const auto &[label, p] : swap_pipes)
            ctrl.addProgram(label, p);
        report = ctrl.run(sched);
        multi.drain();
        final_stats = multi.stats();
        engine_info = multi.engineInfo();
        if (opt.verify) {
            for (unsigned r = 0; r < opt.replicas; ++r) {
                ebpf::MapSet vm_maps(spec.prog.maps);
                spec.seedMaps(vm_maps);
                verifyReplica(spec.prog, vm_programs, streams[r], report,
                              r, vm_maps, multi.replica(r),
                              multi.replicaMaps(r));
            }
        }
    }

    if (host)
        host->finishAll();

    if (!opt.quiet) {
        std::cout << "app " << spec.prog.name << ", " << opt.replicas
                  << " replica(s), " << packets.size() << " packets, "
                  << report.txns.size() << " transactions, engine "
                  << engine_info.describe() << "\n";
        if (!engine_info.fallbackReason.empty())
            std::cout << "engine fallback: " << engine_info.fallbackReason
                      << "\n";
        for (const ctl::CtlTxnRecord &rec : report.txns) {
            std::cout << "  @" << rec.txn.cycle << " "
                      << ctl::ctlOpKindName(rec.txn.kind) << ": submit="
                      << rec.submitCycle << " device=" << rec.deviceCycle
                      << " complete=" << rec.completeCycle;
            if (!rec.statsSnapshot.empty())
                std::cout << " completed="
                          << rec.statsSnapshot[0].completed;
            if (!rec.streamSamples.empty())
                std::cout << " samples="
                          << rec.streamSamples[0].size() << "x"
                          << rec.streamSamples.size() << " @"
                          << rec.txn.streamPeriod << "cyc";
            std::cout << "\n";
        }
        std::cout << "final: " << final_stats.completed << " completed, "
                  << final_stats.lost << " lost, " << final_stats.cycles
                  << " cycles, "
                  << final_stats.throughputMpps(250'000'000) << " Mpps\n";
        if (host) {
            const host::HostQueueCounters t = host->totals();
            std::cout << "host: " << t.consumed << " consumed, "
                      << t.shellDrops << " shell drops, " << t.interrupts
                      << " IRQs (" << t.countTriggeredIrqs << " count, "
                      << t.timerTriggeredIrqs << " timer)\n";
        }
        if (opt.verify)
            std::cout << "verify: OK (VM replay matches)\n";
    }

    if (!opt.statsOut.empty()) {
        Json root;
        root.set("app", Json::str(spec.prog.name))
            .set("schedule", Json::str(opt.schedulePath));
        root.set("backend",
                 Json::str(opt.replicas == 1 ? "pipesim" : "multipipesim"))
            .set("replicas", Json::integer(opt.replicas))
            .set("mapMode",
                 Json::str(opt.mapMode == sim::MapMode::Sharded
                               ? "sharded"
                               : "shared"))
            .set("threaded", Json::boolean(opt.threaded))
            .set("channel",
                 Json()
                     .set("roundTripCycles",
                          Json::integer(opt.channel.roundTripCycles))
                     .set("maxInFlight",
                          Json::integer(opt.channel.maxInFlight)))
            .set("workload",
                 Json()
                     .set("packets", Json::integer(packets.size()))
                     .set("flows", Json::integer(opt.flows))
                     .set("rateGbps", Json::num(opt.rateGbps)))
            .set("engine",
                 Json()
                     .set("active", Json::str(engine_info.describe()))
                     .set("aotAvailable",
                          Json::boolean(engine_info.nativeLoaded))
                     .set("fallbackReason",
                          Json::str(engine_info.fallbackReason)))
            .set("finalStats", statsJson(final_stats, 250'000'000))
            .set("verified", Json::boolean(opt.verify))
            .set("report", reportJson(report));
        if (host)
            root.set("host", host::hostDatapathJson(*host));
        std::ofstream out(opt.statsOut);
        if (!out)
            fatal("cannot write '", opt.statsOut, "'");
        out << root.dump() << "\n";
        if (!opt.quiet)
            std::cout << "stats written to " << opt.statsOut << "\n";
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 2;
    } catch (const PanicError &e) {
        std::cerr << "panic: " << e.what() << "\n";
        return 3;
    }
}
