/**
 * @file
 * Differential fuzzing driver. Two modes:
 *
 *   ehdl-fuzz [--iters N] [--seed N] ...     run a fuzzing campaign
 *   ehdl-fuzz --replay case.ehdlcase ...     replay saved corpus cases
 *
 * Campaign exit status: 0 when no divergence was found, 1 when at least one
 * was (reproducers are shrunk and optionally written to --corpus DIR).
 * Replay exit status: 0 when every case matches its recorded expectation.
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "fuzz/case.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/fuzzer.hpp"
#include "sim/stats_json.hpp"

namespace {

using namespace ehdl;

void
usage(std::ostream &os)
{
    os << "usage: ehdl-fuzz [options]\n"
          "       ehdl-fuzz --replay CASE.ehdlcase [CASE...]\n"
          "\n"
          "campaign options:\n"
          "  --iters N          iterations to run (default 1000)\n"
          "  --seed N           campaign seed (default 1)\n"
          "  --packets-min N    min packets per workload (default 24)\n"
          "  --packets-max N    max packets per workload (default 96)\n"
          "  --flows N          max flows per workload (default 6)\n"
          "  --inject-war-bug   compile without WAR delay buffers\n"
          "  --inject-flush-bug compile without flush-evaluation blocks\n"
          "  --ctl              interleave random host control-plane\n"
          "                     schedules (map updates/deletes/lookups at\n"
          "                     random cycles) and cross-check VM vs PipeSim\n"
          "                     vs sharded MultiPipeSim final map state\n"
          "  --ctl-txns N       max transactions per schedule (default 8)\n"
          "  --ctl-replicas N   MultiPipeSim replicas for --ctl cases\n"
          "  --engine SPEC      pipeline engine: interp (default), aot,\n"
          "                     aot-native (also applies to --replay)\n"
          "                     (default 2, below 2 disables that backend)\n"
          "  --sched MODE       cycle scheduling: dense (default) or event\n"
          "                     (event-driven fast-forward, contracted\n"
          "                     bit-identical to dense)\n"
          "  --host             attach a small-ring host DMA datapath to\n"
          "                     every pipeline backend; the differential\n"
          "                     contract must hold unchanged and drained\n"
          "                     host queues must conserve descriptors\n"
          "                     (consumed + shellDrops == PASS verdicts)\n"
          "  --host-ring N      ring depth of the --host model (default\n"
          "                     16; small keeps backpressure paths hot)\n"
          "  --paranoid         cross-check the O(1) hazard summaries\n"
          "                     against the full read scan (panics on a\n"
          "                     summary false negative)\n"
          "  --stats-out FILE   write campaign counters, engine info and\n"
          "                     aggregated pipeline stats as JSON\n"
          "  --no-shrink        keep reproducers unreduced\n"
          "  --all              keep fuzzing past the first divergence\n"
          "  --corpus DIR       write shrunk reproducers to DIR\n"
          "  --quiet            suppress progress output\n";
}

uint64_t
parseNum(const char *flag, const char *value)
{
    if (!value)
        fatal(flag, " requires a value");
    try {
        size_t pos = 0;
        const uint64_t v = std::stoull(value, &pos);
        if (pos != std::strlen(value))
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal(flag, ": expected a number, got '", value, "'");
    }
}

int
replay(const std::vector<std::string> &paths, const fuzz::RunOptions &run)
{
    int failures = 0;
    for (const std::string &path : paths) {
        const fuzz::FuzzCase c = fuzz::loadCase(path);
        const fuzz::CaseResult r = fuzz::runCase(c, run);
        const bool ok = r.diverged() == c.expectDivergence;
        std::cout << (ok ? "OK   " : "FAIL ") << path << ": "
                  << (r.diverged() ? r.divergence->describe()
                                   : (r.compiled ? "agreement"
                                                 : "rejected: " +
                                                       r.rejectReason))
                  << " (expected "
                  << (c.expectDivergence ? "divergence" : "agreement")
                  << ")\n";
        if (!ok)
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}

int
run(int argc, char **argv)
{
    fuzz::FuzzOptions opts;
    std::vector<std::string> replay_paths;
    std::string stats_out;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--replay") {
            while (i + 1 < argc)
                replay_paths.push_back(argv[++i]);
            if (replay_paths.empty())
                fatal("--replay requires at least one case file");
        } else if (arg == "--iters") {
            opts.iterations = parseNum("--iters", value());
        } else if (arg == "--seed") {
            opts.seed = parseNum("--seed", value());
        } else if (arg == "--packets-min") {
            opts.minPackets =
                static_cast<unsigned>(parseNum("--packets-min", value()));
        } else if (arg == "--packets-max") {
            opts.maxPackets =
                static_cast<unsigned>(parseNum("--packets-max", value()));
        } else if (arg == "--flows") {
            opts.maxFlows =
                static_cast<unsigned>(parseNum("--flows", value()));
        } else if (arg == "--inject-war-bug") {
            opts.injectWarBug = true;
        } else if (arg == "--inject-flush-bug") {
            opts.injectFlushBug = true;
        } else if (arg == "--ctl") {
            opts.ctl = true;
        } else if (arg == "--ctl-txns") {
            opts.ctlMaxTxns =
                static_cast<unsigned>(parseNum("--ctl-txns", value()));
        } else if (arg == "--ctl-replicas") {
            opts.run.ctlReplicas = static_cast<unsigned>(
                parseNum("--ctl-replicas", value()));
            opts.shrinkOpts.run.ctlReplicas = opts.run.ctlReplicas;
        } else if (arg == "--engine") {
            const char *spec = value();
            sim::PipeSimConfig ec;
            if (!spec || !sim::parseEngineSpec(spec, ec))
                fatal("--engine expects interp, aot or aot-native");
            opts.run.engine = ec.engine;
            opts.run.aotBackend = ec.aotBackend;
            // Shrinking must reproduce the divergence under the same
            // engine that found it.
            opts.shrinkOpts.run.engine = ec.engine;
            opts.shrinkOpts.run.aotBackend = ec.aotBackend;
        } else if (arg == "--sched") {
            const char *spec = value();
            if (!spec)
                fatal("--sched expects dense or event");
            const std::string mode = spec;
            sim::SchedMode sm;
            if (mode == "dense")
                sm = sim::SchedMode::Dense;
            else if (mode == "event")
                sm = sim::SchedMode::EventDriven;
            else
                fatal("--sched expects dense or event, got '", mode, "'");
            opts.run.schedMode = sm;
            opts.shrinkOpts.run.schedMode = sm;
        } else if (arg == "--host") {
            opts.run.hostModel = true;
            opts.shrinkOpts.run.hostModel = true;
        } else if (arg == "--host-ring") {
            const unsigned depth =
                static_cast<unsigned>(parseNum("--host-ring", value()));
            if (depth == 0)
                fatal("--host-ring must be at least 1");
            opts.run.hostModel = true;
            opts.run.hostRingDepth = depth;
            opts.shrinkOpts.run.hostModel = true;
            opts.shrinkOpts.run.hostRingDepth = depth;
        } else if (arg == "--paranoid") {
            opts.run.paranoidChecks = true;
            opts.shrinkOpts.run.paranoidChecks = true;
        } else if (arg == "--stats-out") {
            const char *path = value();
            if (!path)
                fatal("--stats-out requires a file path");
            stats_out = path;
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--all") {
            opts.stopAtFirstDivergence = false;
        } else if (arg == "--corpus") {
            const char *dir = value();
            if (!dir)
                fatal("--corpus requires a directory");
            opts.corpusDir = dir;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(std::cerr);
            fatal("unknown option '", arg, "'");
        }
    }
    if (opts.minPackets == 0 || opts.maxPackets < opts.minPackets)
        fatal("--packets-min/--packets-max must satisfy 1 <= min <= max");
    if (opts.maxFlows == 0)
        fatal("--flows must be at least 1");
    if (opts.ctl && opts.ctlMaxTxns == 0)
        fatal("--ctl-txns must be at least 1");

    if (!replay_paths.empty())
        return replay(replay_paths, opts.run);

    std::ostream *log = quiet ? nullptr : &std::cout;
    const fuzz::FuzzStats stats = fuzz::runFuzz(opts, log);
    std::cout << "ran " << stats.iterations << " iterations: "
              << stats.compiled << " compiled, " << stats.rejected
              << " rejected, " << stats.divergences << " divergences ("
              << stats.packetsRun << " packets, " << stats.vmInsns
              << " vm insns)\n";
    if (!stats.rejectedByPass.empty()) {
        std::cout << "rejections by pass:\n";
        for (const auto &[pass, count] : stats.rejectedByPass)
            std::cout << "  " << pass << ": " << count << "\n";
    }
    for (const fuzz::DivergenceRecord &rec : stats.records) {
        std::cout << "divergence at iteration " << rec.iteration << ": "
                  << rec.divergence.describe() << "\n  shrunk to "
                  << rec.shrunk.prog.insns.size() << " insns / "
                  << rec.shrunk.packets.size() << " packets";
        if (!rec.savedPath.empty())
            std::cout << " -> " << rec.savedPath;
        std::cout << "\n";
    }
    if (!stats_out.empty()) {
        Json root;
        Json campaign;
        campaign.set("iterations", Json::integer(stats.iterations))
            .set("compiled", Json::integer(stats.compiled))
            .set("rejected", Json::integer(stats.rejected))
            .set("divergences", Json::integer(stats.divergences))
            .set("packetsRun", Json::integer(stats.packetsRun))
            .set("vmInsns", Json::integer(stats.vmInsns));
        root.set("campaign", std::move(campaign))
            .set("engine", sim::engineJson(stats.engineInfo))
            .set("pipeStats", sim::statsJson(stats.pipeAgg, 250'000'000));
        std::ofstream out(stats_out);
        if (!out)
            fatal("cannot write '", stats_out, "'");
        out << root.dump() << "\n";
        if (!quiet)
            std::cout << "stats written to " << stats_out << "\n";
    }
    return stats.divergences == 0 ? 0 : 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 2;
    } catch (const PanicError &e) {
        std::cerr << "panic: " << e.what() << "\n";
        return 3;
    }
}
