/**
 * @file
 * ehdlc — the eHDL command-line compiler.
 *
 * Mirrors the paper's tool flow: eBPF in, VHDL out, no hardware expertise
 * required (section 5.5: "eHDL starts from the eBPF bytecode ... and
 * generates the firmware ready to be loaded on the Xilinx U50").
 *
 * Usage:
 *   ehdlc compile <prog> [-o out.vhd] [--frame N] [--no-ilp]
 *                 [--no-fusion] [--no-pruning] [--report[=out.json]]
 *                 [--dump-after=<pass>] [--list-passes]
 *   ehdlc disasm  <prog>
 *   ehdlc verify  <prog>
 *   ehdlc sim     <prog> [--packets N] [--flows N] [--zipf S] [--len N]
 *   ehdlc report  <prog>            # pipeline + resource summary
 *
 * <prog> is a textual assembly file (see ebpf/asm.hpp for the syntax), a
 * raw bytecode file (.bin, 8-byte wire slots), an ELF relocatable
 * object (.o) produced by clang -target bpf, or app:<name> for one of
 * the built-in evaluation applications (app:firewall, app:router, ...).
 *
 * A program the compiler rejects prints *every* verifier/classification
 * diagnostic (not just the first) and exits nonzero. --report=<file>
 * writes the CompileReport JSON — per-pass wall times, diagnostics and
 * pipeline geometry — whether or not compilation succeeded.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "apps/apps.hpp"
#include "common/logging.hpp"
#include "ebpf/asm.hpp"
#include "ebpf/codec.hpp"
#include "ebpf/disasm.hpp"
#include "ebpf/elf.hpp"
#include "ebpf/verifier.hpp"
#include "hdl/compiler.hpp"
#include "hdl/flush_model.hpp"
#include "hdl/resources.hpp"
#include "hdl/vhdl.hpp"
#include "host/host_dma.hpp"
#include "net/headers.hpp"
#include "net/pcap.hpp"
#include "sim/multi_pipe_sim.hpp"
#include "sim/nic_shell.hpp"
#include "sim/pipe_sim.hpp"
#include "sim/stats_json.hpp"
#include "sim/traffic.hpp"

using namespace ehdl;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

/** Resolve an app:<name> reference to a built-in evaluation program. */
ebpf::Program
loadBuiltinApp(const std::string &name)
{
    static const std::pair<const char *, apps::AppSpec (*)()> kApps[] = {
        {"toy", apps::makeToyCounter},
        {"firewall", apps::makeSimpleFirewall},
        {"router", apps::makeRouterIpv4},
        {"tunnel", apps::makeTxIpTunnel},
        {"dnat", apps::makeDnat},
        {"suricata", apps::makeSuricataFilter},
        {"leaky_bucket", apps::makeLeakyBucket},
        {"lb", apps::makeL4LoadBalancer},
        {"monitor", apps::makeMonitorSampler},
    };
    for (const auto &[key, make] : kApps)
        if (name == key)
            return make().prog;
    std::string known;
    for (const auto &[key, make] : kApps)
        known += std::string(known.empty() ? "" : ", ") + key;
    fatal("unknown built-in app '", name, "' (known: ", known, ")");
}

/** Load a program from assembly, raw bytecode, an ELF object or app:. */
ebpf::Program
loadProgram(const std::string &path)
{
    if (path.rfind("app:", 0) == 0)
        return loadBuiltinApp(path.substr(4));
    const std::string body = readFile(path);
    const std::string name = [&path] {
        const size_t slash = path.find_last_of('/');
        const size_t start = slash == std::string::npos ? 0 : slash + 1;
        const size_t dot = path.find_last_of('.');
        return path.substr(start,
                           dot == std::string::npos || dot < start
                               ? std::string::npos
                               : dot - start);
    }();
    if (body.size() >= 4 && std::memcmp(body.data(), "\x7f"
                                                     "ELF",
                                        4) == 0) {
        return ebpf::loadElf(
            std::vector<uint8_t>(body.begin(), body.end()), name);
    }
    if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
        ebpf::Program prog;
        prog.name = name;
        prog.insns =
            ebpf::decode(std::vector<uint8_t>(body.begin(), body.end()));
        return prog;
    }
    return ebpf::assemble(body, name);
}

void
printReport(const hdl::Pipeline &pipe)
{
    const hdl::ResourceReport report = hdl::estimateResources(pipe);
    const hdl::HazardGeometry geo = hdl::hazardGeometry(pipe);
    std::printf("program '%s': %zu instructions, %zu maps\n",
                pipe.prog.name.c_str(), pipe.prog.size(),
                pipe.prog.maps.size());
    std::printf("pipeline: %zu stages (%u framing pads), max ILP %u, "
                "avg ILP %.2f\n",
                pipe.numStages(), pipe.padStages, pipe.schedule.maxIlp,
                pipe.schedule.avgIlp);
    std::printf("hazards: %zu map ports, %zu WAR/speculation buffers, "
                "%zu flush blocks",
                pipe.mapPorts.size(), pipe.warBuffers.size(),
                pipe.flushBlocks.size());
    if (geo.hasFlush)
        std::printf(" (K=%.0f, L=%.0f)", geo.k, geo.l);
    std::printf(", %zu elastic buffers\n", pipe.elasticBuffers.size());
    std::printf("latency at %u MHz: %.0f ns through the pipeline\n",
                pipe.options.clockMhz,
                pipe.numStages() * 1000.0 / pipe.options.clockMhz);
    std::printf("Alveo U50 (incl. Corundum shell): LUT %.2f%%, FF %.2f%%, "
                "BRAM %.2f%%\n",
                report.lutFrac * 100, report.ffFrac * 100,
                report.bramFrac * 100);
}

void
listPasses()
{
    std::printf("compiler passes, in order:\n");
    for (const hdl::Pass &pass : hdl::compilerPasses())
        std::printf("  %-14s %s\n", pass.name, pass.summary);
}

int
cmdCompile(int argc, char **argv)
{
    std::string out_path;
    std::string report_json;
    std::string dump_after;
    bool report = false;
    bool testbench = false;
    hdl::PipelineOptions options;
    std::string input;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--testbench")
            testbench = true;
        else if (arg == "--frame" && i + 1 < argc)
            options.frameBytes =
                static_cast<unsigned>(std::stoul(argv[++i]));
        else if (arg == "--no-ilp")
            options.enableIlp = false;
        else if (arg == "--no-fusion")
            options.enableFusion = false;
        else if (arg == "--no-pruning")
            options.enablePruning = false;
        else if (arg == "--report")
            report = true;
        else if (arg.rfind("--report=", 0) == 0)
            report_json = arg.substr(9);
        else if (arg == "--dump-after" && i + 1 < argc)
            dump_after = argv[++i];
        else if (arg.rfind("--dump-after=", 0) == 0)
            dump_after = arg.substr(13);
        else if (arg == "--list-passes") {
            listPasses();
            return 0;
        } else if (!arg.empty() && arg[0] != '-')
            input = arg;
        else
            fatal("unknown option '", arg, "'");
    }
    if (input.empty())
        fatal("compile: missing input file");
    if (!dump_after.empty() && hdl::findPass(dump_after) == nullptr) {
        std::string names;
        for (const std::string &n : hdl::passNames())
            names += (names.empty() ? "" : ", ") + n;
        fatal("--dump-after: unknown pass '", dump_after, "' (passes: ",
              names, ")");
    }

    const ebpf::Program prog = loadProgram(input);
    hdl::PassObserver observer;
    if (!dump_after.empty()) {
        observer = [&dump_after](const std::string &pass,
                                 const hdl::CompileContext &ctx) {
            if (pass == dump_after)
                std::printf("== after pass '%s' ==\n%s", pass.c_str(),
                            ctx.dump().c_str());
        };
    }
    hdl::CompileResult result =
        hdl::compileWithReport(prog, options, observer);

    if (!report_json.empty()) {
        std::ofstream json_out(report_json, std::ios::binary);
        if (!json_out)
            fatal("cannot write '", report_json, "'");
        json_out << result.report.toJson().dump() << "\n";
        std::printf("wrote compile report to %s\n", report_json.c_str());
    }
    for (const Diagnostic &d : result.report.diags.all()) {
        if (d.severity != Severity::Error)
            std::fprintf(stderr, "ehdlc: %s\n", d.str().c_str());
    }
    if (!result.pipeline) {
        std::fprintf(stderr,
                     "ehdlc: program '%s' failed to compile with %zu "
                     "error(s):\n",
                     prog.name.c_str(),
                     result.report.diags.errorCount());
        for (const Diagnostic &d : result.report.diags.all())
            if (d.severity == Severity::Error)
                std::fprintf(stderr, "  %s\n", d.str().c_str());
        return 1;
    }
    const hdl::Pipeline &pipe = *result.pipeline;
    if (report)
        printReport(pipe);
    const std::string vhdl = hdl::generateVhdl(pipe);
    if (out_path.empty())
        out_path = prog.name + "_pipeline.vhd";
    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << vhdl;
    std::printf("wrote %zu bytes of VHDL to %s\n", vhdl.size(),
                out_path.c_str());
    if (testbench) {
        net::PacketSpec spec;
        const net::Packet pkt = net::PacketFactory::build(spec);
        const std::string tb = hdl::generateTestbench(pipe, pkt.bytes());
        const std::string tb_path = out_path + "_tb.vhd";
        std::ofstream tb_out(tb_path, std::ios::binary);
        if (!tb_out)
            fatal("cannot write '", tb_path, "'");
        tb_out << tb;
        std::printf("wrote %zu bytes of testbench to %s\n", tb.size(),
                    tb_path.c_str());
    }
    return 0;
}

int
cmdDisasm(const std::string &input)
{
    const ebpf::Program prog = loadProgram(input);
    for (const ebpf::MapDef &def : prog.maps)
        std::printf(".map %s %s %u %u %u\n", def.name.c_str(),
                    ebpf::mapKindName(def.kind).c_str(), def.keySize,
                    def.valueSize, def.maxEntries);
    std::printf("%s", ebpf::disasm(prog).c_str());
    return 0;
}

int
cmdVerify(const std::string &input)
{
    const ebpf::Program prog = loadProgram(input);
    const ebpf::VerifyResult vr = ebpf::verify(prog, true);
    if (vr.ok) {
        std::printf("%s: OK (%zu instructions%s)\n", prog.name.c_str(),
                    prog.size(),
                    vr.hasBackwardJumps ? ", has bounded loops" : "");
        return 0;
    }
    std::printf("%s: FAILED\n", prog.name.c_str());
    for (const std::string &error : vr.errors)
        std::printf("  %s\n", error.c_str());
    return 1;
}

/** Report which engine actually runs, including any native fallback. */
void
printEngine(const sim::EngineInfo &info)
{
    std::printf("engine: %s\n", info.describe().c_str());
    if (!info.fallbackReason.empty())
        std::printf("  native backend unavailable: %s\n",
                    info.fallbackReason.c_str());
}

/** Machine-readable stats for `sim --stats-out` (both backends). */
void
writeSimStats(const std::string &path, const std::string &prog_name,
              unsigned replicas, bool threaded, const std::string &sched,
              const sim::EngineInfo &engine, const sim::PipeSimStats &stats,
              uint64_t clock_hz, const sim::PipeSimPhaseProfile &phases,
              const host::HostDatapath *host = nullptr)
{
    Json root;
    root.set("app", Json::str(prog_name))
        .set("replicas", Json::integer(replicas))
        .set("threaded", Json::boolean(threaded))
        .set("sched", Json::str(sched))
        .set("engine", sim::engineJson(engine))
        .set("stats", sim::statsJson(stats, clock_hz));
    if (phases.enabled)
        root.set("phases", sim::phaseProfileJson(phases));
    if (host != nullptr)
        root.set("host", host::hostDatapathJson(*host));
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    out << root.dump() << "\n";
    std::printf("stats written to %s\n", path.c_str());
}

/** Human-readable host-datapath summary after the drain. */
void
printHostSummary(const host::HostDatapath &host)
{
    const host::HostQueueCounters t = host.totals();
    std::printf("  host: %llu consumed (%.1f MB), %llu shell drops, "
                "%llu IRQs (%llu count, %llu timer)\n",
                static_cast<unsigned long long>(t.consumed),
                static_cast<double>(t.consumedBytes) / 1e6,
                static_cast<unsigned long long>(t.shellDrops),
                static_cast<unsigned long long>(t.interrupts),
                static_cast<unsigned long long>(t.countTriggeredIrqs),
                static_cast<unsigned long long>(t.timerTriggeredIrqs));
    for (unsigned q = 0; q < host.numQueues(); ++q) {
        const host::HostQueue &hq = host.queue(q);
        std::printf("  host queue %u: %llu consumed, %llu drops, "
                    "ring occupancy p50 %u / p99 %u\n", q,
                    static_cast<unsigned long long>(hq.counters().consumed),
                    static_cast<unsigned long long>(
                        hq.counters().shellDrops),
                    hq.occupancyPercentile(0.50),
                    hq.occupancyPercentile(0.99));
    }
}

/** Parse `--coalesce COUNT[,TIMEOUT]` into @p config. */
void
parseCoalesceSpec(const std::string &spec, host::HostDmaConfig &config)
{
    const size_t comma = spec.find(',');
    config.coalesceCount =
        static_cast<unsigned>(std::stoul(spec.substr(0, comma)));
    if (comma != std::string::npos)
        config.coalesceTimeoutCycles = std::stoull(spec.substr(comma + 1));
}

int
cmdSim(int argc, char **argv)
{
    std::string input;
    std::string pcap_in, pcap_out;
    std::string stats_out;
    int packets = 10000;
    unsigned replicas = 1;
    bool threaded = false;
    std::string engine_spec = "interp";
    std::string sched_spec = "dense";
    bool paranoid = false;
    bool profile_phases = false;
    bool host_rings = false;
    host::HostDmaConfig host_config;
    sim::TrafficConfig traffic;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--packets" && i + 1 < argc)
            packets = std::stoi(argv[++i]);
        else if (arg == "--host-rings")
            host_rings = true;
        else if (arg == "--ring-depth" && i + 1 < argc) {
            host_rings = true;
            host_config.ringDepth =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--host-rate" && i + 1 < argc) {
            host_rings = true;
            host_config.hostRateMpps = std::stod(argv[++i]);
        } else if (arg == "--coalesce" && i + 1 < argc) {
            host_rings = true;
            parseCoalesceSpec(argv[++i], host_config);
        } else if (arg == "--host-frac" && i + 1 < argc)
            traffic.hostFlowFraction = std::stod(argv[++i]);
        else if (arg == "--engine" && i + 1 < argc)
            engine_spec = argv[++i];
        else if (arg == "--sched" && i + 1 < argc)
            sched_spec = argv[++i];
        else if (arg == "--paranoid")
            paranoid = true;
        else if (arg == "--profile-phases")
            profile_phases = true;
        else if (arg == "--pcap-in" && i + 1 < argc)
            pcap_in = argv[++i];
        else if (arg == "--pcap-out" && i + 1 < argc)
            pcap_out = argv[++i];
        else if (arg == "--stats-out" && i + 1 < argc)
            stats_out = argv[++i];
        else if (arg == "--flows" && i + 1 < argc)
            traffic.numFlows = std::stoull(argv[++i]);
        else if (arg == "--zipf" && i + 1 < argc)
            traffic.zipfS = std::stod(argv[++i]);
        else if (arg == "--len" && i + 1 < argc)
            traffic.packetLen =
                static_cast<uint32_t>(std::stoul(argv[++i]));
        else if (arg == "--replicas" && i + 1 < argc)
            replicas = static_cast<unsigned>(std::stoul(argv[++i]));
        else if (arg == "--threaded")
            threaded = true;
        else if (!arg.empty() && arg[0] != '-')
            input = arg;
        else
            fatal("unknown option '", arg, "'");
    }
    if (input.empty())
        fatal("sim: missing input file");
    sim::SchedMode sched_mode;
    if (sched_spec == "dense")
        sched_mode = sim::SchedMode::Dense;
    else if (sched_spec == "event")
        sched_mode = sim::SchedMode::EventDriven;
    else
        fatal("unknown sched mode '", sched_spec, "' (dense, event)");

    const ebpf::Program prog = loadProgram(input);
    const hdl::Pipeline pipe = hdl::compile(prog);
    printReport(pipe);

    if (replicas > 1) {
        // Multi-queue mode: N sharded replicas behind the RSS dispatch.
        ebpf::MapSet maps(prog.maps);
        sim::MultiPipeSimConfig mconfig;
        mconfig.numReplicas = replicas;
        mconfig.threaded = threaded;
        mconfig.pipe.inputQueueCapacity = 1u << 20;
        mconfig.pipe.schedMode = sched_mode;
        mconfig.pipe.paranoidChecks = paranoid;
        mconfig.pipe.profilePhases = profile_phases;
        if (!sim::parseEngineSpec(engine_spec, mconfig.pipe))
            fatal("unknown engine '", engine_spec,
                  "' (interp, aot, aot-native)");
        sim::MultiPipeSim multi(pipe, maps, mconfig);
        printEngine(multi.engineInfo());
        std::unique_ptr<host::HostDatapath> host;
        if (host_rings) {
            host_config.numQueues = replicas;
            host_config.clockHz = mconfig.pipe.clockHz;
            host = std::make_unique<host::HostDatapath>(host_config);
            host->attach(multi);
        }
        if (!pcap_in.empty()) {
            const std::vector<net::Packet> replay = net::readPcap(pcap_in);
            packets = static_cast<int>(replay.size());
            for (const net::Packet &pkt : replay)
                multi.offer(pkt);
        } else {
            sim::TrafficGen gen(traffic);
            for (int i = 0; i < packets; ++i)
                multi.offer(gen.next());
        }
        multi.drain();
        const sim::PipeSimStats agg = multi.stats();
        std::printf("\nsimulated %d packets across %u replicas:\n",
                    packets, replicas);
        std::printf("  modeled aggregate %.1f Mpps over %llu cycles\n",
                    agg.throughputMpps(mconfig.pipe.clockHz),
                    static_cast<unsigned long long>(agg.cycles));
        for (size_t r = 0; r < multi.numReplicas(); ++r) {
            const sim::PipeSimStats &s = multi.replica(r).stats();
            std::printf("  queue %zu: %llu packets, %llu cycles, "
                        "%llu flushes\n",
                        r, static_cast<unsigned long long>(s.completed),
                        static_cast<unsigned long long>(s.cycles),
                        static_cast<unsigned long long>(s.flushEvents));
        }
        if (host) {
            host->finishAll();
            printHostSummary(*host);
        }
        if (!stats_out.empty())
            writeSimStats(stats_out, prog.name, replicas, threaded,
                          sched_spec, multi.engineInfo(), agg,
                          mconfig.pipe.clockHz, multi.phaseProfile(),
                          host.get());
        return 0;
    }

    ebpf::MapSet maps(prog.maps);
    sim::PipeSimConfig config;
    config.inputQueueCapacity = 1u << 20;
    config.schedMode = sched_mode;
    config.paranoidChecks = paranoid;
    config.profilePhases = profile_phases;
    if (!sim::parseEngineSpec(engine_spec, config))
        fatal("unknown engine '", engine_spec,
              "' (interp, aot, aot-native)");
    sim::PipeSim sim(pipe, maps, config);
    printEngine(sim.engineInfo());
    std::unique_ptr<host::HostDatapath> host;
    if (host_rings) {
        host_config.numQueues = 1;
        host_config.clockHz = config.clockHz;
        host = std::make_unique<host::HostDatapath>(host_config);
        host->attach(sim);
    }
    if (!pcap_in.empty()) {
        const std::vector<net::Packet> replay = net::readPcap(pcap_in);
        packets = static_cast<int>(replay.size());
        for (const net::Packet &pkt : replay)
            sim.offer(pkt);
    } else {
        sim::TrafficGen gen(traffic);
        for (int i = 0; i < packets; ++i)
            sim.offer(gen.next());
    }
    sim.drain();
    if (!pcap_out.empty()) {
        // Emit forwarded packets (TX/redirect) as seen on the wire.
        std::vector<net::Packet> emitted;
        for (const sim::PacketOutcome &out : sim.outcomes()) {
            if (out.action == ebpf::XdpAction::Tx ||
                out.action == ebpf::XdpAction::Redirect) {
                net::Packet pkt(out.bytes);
                pkt.arrivalNs = out.exitCycle * 4;
                emitted.push_back(std::move(pkt));
            }
        }
        net::writePcap(pcap_out, emitted);
        std::printf("wrote %zu forwarded packets to %s\n", emitted.size(),
                    pcap_out.c_str());
    }

    uint64_t actions[5] = {};
    for (const sim::PacketOutcome &out : sim.outcomes())
        actions[static_cast<uint32_t>(out.action) % 5]++;
    const sim::EndToEndResult e2e =
        sim::summarizeEndToEnd(sim, traffic.packetLen ? traffic.packetLen
                                                      : 64);
    std::printf("\nsimulated %d packets from %llu flows:\n", packets,
                static_cast<unsigned long long>(traffic.numFlows));
    std::printf("  throughput %.1f Mpps (pipeline %.1f, line rate %.1f)\n",
                e2e.throughputMpps, e2e.pipelineMpps, e2e.lineRateMpps);
    std::printf("  latency %.0f ns end to end\n", e2e.avgLatencyNs);
    std::printf("  flushes %llu, lost %llu\n",
                static_cast<unsigned long long>(e2e.flushEvents),
                static_cast<unsigned long long>(e2e.lostPackets));
    for (uint32_t a = 0; a < 5; ++a) {
        if (actions[a])
            std::printf("  %s: %llu\n",
                        ebpf::xdpActionName(
                            static_cast<ebpf::XdpAction>(a))
                            .c_str(),
                        static_cast<unsigned long long>(actions[a]));
    }
    if (host) {
        host->finishAll();
        printHostSummary(*host);
    }
    if (!stats_out.empty())
        writeSimStats(stats_out, prog.name, 1, false, sched_spec,
                      sim.engineInfo(), sim.stats(), config.clockHz,
                      sim.phaseProfile(), host.get());
    return 0;
}

void
usage()
{
    std::printf(
        "ehdlc — eBPF/XDP to hardware pipeline compiler\n"
        "\n"
        "usage:\n"
        "  ehdlc compile <prog> [-o out.vhd] [--frame N] [--no-ilp]\n"
        "                [--no-fusion] [--no-pruning] [--report[=out.json]]\n"
        "                [--dump-after=<pass>] [--list-passes] [--testbench]\n"
        "  ehdlc disasm  <prog>\n"
        "  ehdlc verify  <prog>\n"
        "  ehdlc report  <prog>\n"
        "  ehdlc sim     <prog> [--packets N] [--flows N] [--zipf S] [--len N]\n"
        "                [--pcap-in f] [--pcap-out f] [--replicas N] [--threaded]\n"
        "                [--engine interp|aot|aot-native] [--sched dense|event]\n"
        "                [--paranoid] [--profile-phases] [--stats-out f]\n"
        "                [--host-rings] [--ring-depth N] [--host-rate MPPS]\n"
        "                [--coalesce COUNT[,TIMEOUT]] [--host-frac F]\n"
        "\n"
        "<prog>: textual assembly (.s), raw bytecode (.bin), an ELF object\n"
        "built with clang -target bpf, or app:<name> for a built-in\n"
        "evaluation program (app:firewall, app:router, app:tunnel,\n"
        "app:dnat, app:suricata, app:toy, ...).\n"
        "\n"
        "compile exits nonzero listing every diagnostic when the program\n"
        "is rejected; --report=<file> writes per-pass timings, diagnostics\n"
        "and pipeline geometry as JSON.\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return argc < 2 ? 0 : 1;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "compile")
            return cmdCompile(argc - 2, argv + 2);
        if (cmd == "disasm")
            return cmdDisasm(argv[2]);
        if (cmd == "verify")
            return cmdVerify(argv[2]);
        if (cmd == "report") {
            printReport(hdl::compile(loadProgram(argv[2])));
            return 0;
        }
        if (cmd == "sim")
            return cmdSim(argc - 2, argv + 2);
        usage();
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ehdlc: %s\n", e.what());
        return 1;
    }
}
