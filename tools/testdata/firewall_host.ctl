# Host-datapath schedule for app:firewall (format: docs/CONTROL_PLANE.md).
#
# Meant to run with --host-rings and a nonzero --host-frac so a share of
# the flows is host-destined (TCP passes the firewall): the stream verb
# then samples per-queue ring occupancy, coalescing counters and drop
# reasons while the host model absorbs the PASS stream — the nfbmeter-
# style periodic readback. The mailbox stays busy until the last sample,
# so the closing stats poll serializes behind the stream.
@100 stats
@400 stream 500 8
@6000 stats
@8000 drain
