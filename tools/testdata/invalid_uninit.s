; Deliberately invalid: reads two uninitialized registers. Used by the
; cli_compile_invalid_lists_all_errors test to check that ehdlc prints
; every verifier diagnostic (not just the first) and exits nonzero.
r2 = r5
r3 = r7
r0 = 2
exit
