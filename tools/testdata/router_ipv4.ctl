# Sample host schedule for app:router_ipv4 (format: docs/CONTROL_PLANE.md).
#
# The routes map is an LPM trie with 8-byte keys {prefixlen u32 LE,
# destination prefix BE} and 16-byte values {ifindex u32 LE, dmac 6B,
# smac 6B}; rtstats is a 4-entry array of u64 counters.
#
# Poll counters early, install a 10/8 route mid-run, read it back,
# zero two stats slots in one batched transaction, then withdraw the
# route again and poll once more after the traffic tail.
@100 stats
@500 update routes 080000000a000000 05000000aabbccddeeff102030405060 any
@800 lookup routes 080000000a000000
@1200 batch update rtstats 00000000 0000000000000000 any ; update rtstats 01000000 0000000000000000 any
@2000 stats
@2500 delete routes 080000000a000000
@4000 drain
@4500 stats
